package sim

import (
	"math"
	"testing"

	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/policy"
	"repro/internal/sde"
	"repro/internal/trace"
)

func quickConfig(t *testing.T, pol policy.Policy) Config {
	t.Helper()
	p := mec.Default()
	p.M = 12
	p.K = 4
	cfg := DefaultConfig(p, pol)
	cfg.Epochs = 1
	cfg.StepsPerEpoch = 15
	cfg.Solver.NH = 5
	cfg.Solver.NQ = 21
	cfg.Solver.Steps = 30
	cfg.Solver.MaxIters = 20
	return cfg
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := quickConfig(t, policy.NewMFGCP())
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.PolicyName != "MFG-CP" || res.M != 12 || res.Epochs != 1 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	if len(res.Ledgers) != 12 || len(res.FinalQ) != 12 || len(res.FinalH) != 12 {
		t.Fatal("per-EDP slices have wrong lengths")
	}
	p := cfg.Params
	for i, l := range res.Ledgers {
		if l.Trading < 0 || l.Sharing < 0 || l.Placement < 0 || l.Staleness < 0 || l.ShareCost < 0 {
			t.Fatalf("EDP %d has negative ledger entries: %+v", i, l)
		}
		if math.IsNaN(l.Utility()) {
			t.Fatalf("EDP %d utility is NaN", i)
		}
		for k, q := range res.FinalQ[i] {
			if q < 0 || q > p.Qk {
				t.Fatalf("EDP %d content %d final q=%g outside [0,Qk]", i, k, q)
			}
		}
		if res.FinalH[i] < p.HMin || res.FinalH[i] > p.HMax {
			t.Fatalf("EDP %d final h=%g outside fading range", i, res.FinalH[i])
		}
	}
	if len(res.Stats) != 1 {
		t.Fatalf("expected 1 epoch stat, got %d", len(res.Stats))
	}
	es := res.Stats[0]
	if es.MeanPrice <= 0 || es.MeanPrice > p.PHat {
		t.Errorf("mean price %g outside (0, p̂]", es.MeanPrice)
	}
	if es.MeanRate < 0 || es.MeanRate > 1 {
		t.Errorf("mean caching rate %g outside [0,1]", es.MeanRate)
	}
	if res.StrategyTime <= 0 {
		t.Error("strategy time not recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickConfig(t, policy.NewRR()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(t, policy.NewRR()))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanUtility() != b.MeanUtility() {
		t.Error("same seed should give identical results")
	}
	cfg := quickConfig(t, policy.NewRR())
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanUtility() == c.MeanUtility() {
		t.Error("different seeds should give different results")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := quickConfig(t, policy.NewRR())
	cfg.Policy = nil
	if _, err := Run(cfg); err == nil {
		t.Error("nil policy should be rejected")
	}
	cfg = quickConfig(t, policy.NewRR())
	cfg.Epochs = 0
	if _, err := Run(cfg); err == nil {
		t.Error("0 epochs should be rejected")
	}
	cfg = quickConfig(t, policy.NewRR())
	cfg.StepsPerEpoch = 0
	if _, err := Run(cfg); err == nil {
		t.Error("0 steps should be rejected")
	}
	cfg = quickConfig(t, policy.NewRR())
	cfg.RequestsPerEDP = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative demand should be rejected")
	}
	cfg = quickConfig(t, policy.NewRR())
	cfg.Area = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero area should be rejected")
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, pol := range []policy.Policy{policy.NewMFGCP(), policy.NewMFG(), policy.NewRR(), policy.NewMPC(), policy.NewUDCS()} {
		res, err := Run(quickConfig(t, pol))
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if math.IsNaN(res.MeanUtility()) {
			t.Fatalf("%s: NaN utility", pol.Name())
		}
	}
}

func TestSharingLedgersBalance(t *testing.T) {
	// Sharing payments are zero-sum: total Sharing income equals total
	// ShareCost across the population.
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Epochs = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var income, cost float64
	for _, l := range res.Ledgers {
		income += l.Sharing
		cost += l.ShareCost
	}
	if math.Abs(income-cost) > 1e-9*(1+income) {
		t.Errorf("sharing market does not balance: income %g vs cost %g", income, cost)
	}
}

func TestNoSharingForMFGBaseline(t *testing.T) {
	res, err := Run(quickConfig(t, policy.NewMFG()))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Ledgers {
		if l.Sharing != 0 || l.ShareCost != 0 {
			t.Fatalf("EDP %d recorded sharing under the MFG baseline: %+v", i, l)
		}
	}
}

func TestHeterogeneousDemand(t *testing.T) {
	cfg := quickConfig(t, policy.NewRR())
	cfg.HeterogeneousDemand = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MeanUtility()) {
		t.Fatal("NaN utility with heterogeneous demand")
	}
}

func TestExactInterferenceAblation(t *testing.T) {
	base, err := Run(quickConfig(t, policy.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(t, policy.NewMPC())
	cfg.ExactInterference = true
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The two interference models must both produce finite results and
	// should not coincide exactly.
	if math.IsNaN(exact.MeanUtility()) {
		t.Fatal("NaN utility under exact interference")
	}
	if base.MeanLedger().Staleness == exact.MeanLedger().Staleness {
		t.Error("exact and mean-field interference gave identical staleness")
	}
}

func TestEmpiricalQDensity(t *testing.T) {
	res, err := Run(quickConfig(t, policy.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	dens, err := res.EmpiricalQDensity(0, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for _, d := range dens {
		if d < 0 {
			t.Fatal("negative density")
		}
		integral += d * 10 // bin width 100/10
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("empirical density integrates to %g", integral)
	}
	if _, err := res.EmpiricalQDensity(-1, 10, 100); err == nil {
		t.Error("bad content index should error")
	}
	if _, err := res.EmpiricalQDensity(0, 0, 100); err == nil {
		t.Error("0 bins should error")
	}
}

// Mean-field cross-validation: the empirical distribution of remaining space
// under the MFG-CP policy should resemble the FPK density of the solved
// equilibrium for the same content. This is the structural test that the
// mean-field approximation describes the finite-M market.
func TestEmpiricalMatchesFPK(t *testing.T) {
	p := mec.Default()
	p.M = 400 // large population for the mean-field limit
	p.K = 2
	pol := policy.NewMFGCP()
	cfg := DefaultConfig(p, pol)
	cfg.Epochs = 1
	cfg.StepsPerEpoch = 60
	cfg.Seed = 5
	cfg.Solver.NH = 7
	cfg.Solver.NQ = 41
	cfg.Solver.Steps = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := pol.Equilibrium(0)
	if err != nil {
		t.Fatal(err)
	}
	if eq == nil {
		t.Fatal("content 0 was not solved")
	}
	// FPK marginal at the end of the epoch, rebinned to the histogram grid.
	marg, err := eq.MarginalQ(eq.Time.Steps)
	if err != nil {
		t.Fatal(err)
	}
	const bins = 10
	emp, err := res.EmpiricalQDensity(0, bins, p.Qk)
	if err != nil {
		t.Fatal(err)
	}
	fpkBinned := make([]float64, bins)
	per := len(marg) / bins
	for b := 0; b < bins; b++ {
		var s float64
		n := 0
		for j := b * per; j < (b+1)*per && j < len(marg); j++ {
			s += marg[j]
			n++
		}
		fpkBinned[b] = s / float64(n)
	}
	// Normalise both to unit mass on the bin grid before comparing.
	normalize := func(v []float64) {
		var tot float64
		for _, x := range v {
			tot += x
		}
		if tot > 0 {
			for i := range v {
				v[i] /= tot
			}
		}
	}
	normalize(emp)
	normalize(fpkBinned)
	dist, err := numerics.L1Distance(emp, fpkBinned, 1)
	if err != nil {
		t.Fatal(err)
	}
	// L1 over probability vectors is in [0,2]; require substantially closer
	// than uninformed (uniform vs point mass would be ≈1.8).
	if dist > 0.6 {
		t.Errorf("empirical vs FPK L1 distance %.3f too large: emp=%v fpk=%v", dist, emp, fpkBinned)
	}
}

func TestMFGCPBeatsBaselinesInUtility(t *testing.T) {
	// The headline claim (Fig. 14): MFG-CP's utility exceeds RR and MPC.
	run := func(pol policy.Policy) float64 {
		cfg := quickConfig(t, pol)
		cfg.Epochs = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		return res.MeanUtility()
	}
	mfgcp := run(policy.NewMFGCP())
	if rr := run(policy.NewRR()); mfgcp <= rr {
		t.Errorf("MFG-CP (%.1f) should beat RR (%.1f)", mfgcp, rr)
	}
	if mpc := run(policy.NewMPC()); mfgcp <= mpc {
		t.Errorf("MFG-CP (%.1f) should beat MPC (%.1f)", mfgcp, mpc)
	}
}

func TestPeerIndexNeverSelf(t *testing.T) {
	rng := sde.NewRNG(42)
	for m := 2; m <= 5; m++ {
		seen := make(map[int]bool)
		for trial := 0; trial < 200; trial++ {
			j := peerIndex(rng, m, 1)
			if j == 1 {
				t.Fatalf("peerIndex returned self for m=%d", m)
			}
			if j < 0 || j >= m {
				t.Fatalf("peerIndex out of range: %d for m=%d", j, m)
			}
			seen[j] = true
		}
		if len(seen) != m-1 {
			t.Errorf("m=%d: only %d of %d peers ever drawn", m, len(seen), m-1)
		}
	}
	if got := peerIndex(sde.NewRNG(1), 1, 0); got != 0 {
		t.Errorf("single-EDP market should return self, got %d", got)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig(mec.Default(), policy.NewRR())
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := cfg.Solver.Validate(); err != nil {
		t.Fatalf("default solver config invalid: %v", err)
	}
}

func TestSingleEDPMarket(t *testing.T) {
	// M=1 exercises the Eq. 5 monopoly branch: the price is always p̂.
	p := mec.Default()
	p.M = 1
	p.K = 2
	cfg := DefaultConfig(p, policy.NewMPC())
	cfg.Epochs = 1
	cfg.StepsPerEpoch = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("single-EDP market: %v", err)
	}
	if math.Abs(res.Stats[0].MeanPrice-p.PHat) > 1e-9 {
		t.Errorf("monopoly price %g, want p̂=%g", res.Stats[0].MeanPrice, p.PHat)
	}
	// With sharing enabled but no peers, no sharing settlements occur.
	if l := res.MeanLedger(); l.Sharing != 0 || l.ShareCost != 0 {
		t.Errorf("monopolist recorded sharing: %+v", l)
	}
}

func TestSingleContentMarket(t *testing.T) {
	p := mec.Default()
	p.M = 6
	p.K = 1
	cfg := DefaultConfig(p, policy.NewRR())
	cfg.Epochs = 1
	cfg.StepsPerEpoch = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("single-content market: %v", err)
	}
	if math.IsNaN(res.MeanUtility()) {
		t.Fatal("NaN utility")
	}
	if len(res.FinalQ[0]) != 1 {
		t.Fatalf("expected one content column, got %d", len(res.FinalQ[0]))
	}
}

func TestTraceCategoryMismatchRejected(t *testing.T) {
	cfg := quickConfig(t, policy.NewRR())
	gen := trace.DefaultGenConfig()
	gen.K = cfg.Params.K + 3
	ds, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = ds
	if _, err := Run(cfg); err == nil {
		t.Error("trace/params category mismatch should be rejected")
	}
}

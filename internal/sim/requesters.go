package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mec"
	"repro/internal/numerics"
	"repro/internal/sde"
)

// RequesterConfig enables the requester-level demand model of the paper's
// system model (Section II): a group J of content requesters with positions
// and random mobility, each associated with its geographically nearest EDP
// ("each requester is associated with a default serving EDP that is nearest
// geographically"). Requests then arrive at EDPs through the association map
// instead of being split uniformly, and the per-EDP timeliness level L_{i,k}
// is the average of the requesters' declared requirements (Definition 2).
type RequesterConfig struct {
	// J is the number of requesters (0 disables the requester level and the
	// simulator falls back to homogeneous per-EDP demand).
	J int
	// Speed is the distance a requester moves per epoch (random direction,
	// reflected at the area boundary) — the "random mobility of requesters"
	// driving the channel randomness in Eq. 1.
	Speed float64
	// RequestsPerRequester is the mean number of requests one requester
	// issues per epoch, split over contents by the trace's day shares.
	RequestsPerRequester float64
	// TimelinessNoise is the spread of individual timeliness declarations
	// around the content's trace-derived level L_k.
	TimelinessNoise float64
}

// Validate checks the requester configuration.
func (c RequesterConfig) Validate() error {
	if c.J < 0 {
		return fmt.Errorf("sim: requester count must be non-negative, got %d", c.J)
	}
	if c.J == 0 {
		return nil
	}
	// NaN compares false against every bound, so the "< 0" guards alone would
	// let NaN rates drive the demand draws; reject non-finite values explicitly.
	if math.IsNaN(c.Speed) || math.IsInf(c.Speed, 0) || c.Speed < 0 {
		return fmt.Errorf("sim: requester speed must be non-negative and finite, got %g", c.Speed)
	}
	if math.IsNaN(c.RequestsPerRequester) || math.IsInf(c.RequestsPerRequester, 0) || c.RequestsPerRequester < 0 {
		return fmt.Errorf("sim: requests per requester must be non-negative and finite, got %g", c.RequestsPerRequester)
	}
	if math.IsNaN(c.TimelinessNoise) || math.IsInf(c.TimelinessNoise, 0) || c.TimelinessNoise < 0 {
		return fmt.Errorf("sim: timeliness noise must be non-negative and finite, got %g", c.TimelinessNoise)
	}
	return nil
}

// requester is one member of the group J.
type requester struct {
	x, y float64
	home int     // index of the associated (nearest) EDP
	h    float64 // per-link channel fading coefficient (Eq. 1 is per (i,j) link)
}

// requesterPopulation carries the mutable requester state across epochs.
type requesterPopulation struct {
	cfg  RequesterConfig
	area float64
	rs   []requester
}

// newRequesterPopulation scatters J requesters uniformly over the area with
// per-link fading drawn from the OU stationary law.
func newRequesterPopulation(cfg RequesterConfig, area float64, ou sde.OU, hMin, hMax float64, rng *rand.Rand) *requesterPopulation {
	sd := math.Sqrt(ou.StationaryVar())
	rs := make([]requester, cfg.J)
	for i := range rs {
		rs[i] = requester{
			x: rng.Float64() * area,
			y: rng.Float64() * area,
			h: sde.ReflectInto(ou.Mean+sd*rng.NormFloat64(), hMin, hMax),
		}
	}
	return &requesterPopulation{cfg: cfg, area: area, rs: rs}
}

// stepFading advances every requester's link fading one Euler–Maruyama step
// of the Eq. 1 Ornstein–Uhlenbeck dynamics, reflected into the fading range.
func (p *requesterPopulation) stepFading(ou sde.OU, hMin, hMax, dt float64, rng *rand.Rand) {
	sq := math.Sqrt(dt)
	for i := range p.rs {
		h := p.rs[i].h
		h += ou.Drift(0, h)*dt + ou.Diffusion(0, h)*sq*rng.NormFloat64()
		p.rs[i].h = sde.ReflectInto(h, hMin, hMax)
	}
}

// meanInvRate returns, per EDP, the mean reciprocal transmission rate
// 1/H_{i,j} over the EDP's associated requesters (the quantity the Eq. 9
// staleness sum actually needs: Σ_j (…)/H_{i,j} = |I|·(…)·E[1/H]). EDPs
// without requesters fall back to their own representative rate.
func (p *requesterPopulation) meanInvRate(ch *mec.ChannelModel, agents []edp) []float64 {
	sums := make([]float64, len(agents))
	counts := make([]int, len(agents))
	for i := range p.rs {
		r := &p.rs[i]
		sums[r.home] += 1 / ch.Rate(r.h)
		counts[r.home]++
	}
	out := make([]float64, len(agents))
	for i := range agents {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		} else {
			out[i] = 1 / ch.Rate(agents[i].h)
		}
	}
	return out
}

// move advances every requester one epoch of random mobility: a uniformly
// random direction at the configured speed, reflected into the area.
func (p *requesterPopulation) move(rng *rand.Rand) {
	for i := range p.rs {
		theta := 2 * math.Pi * rng.Float64()
		p.rs[i].x = sde.ReflectInto(p.rs[i].x+p.cfg.Speed*math.Cos(theta), 0, p.area)
		p.rs[i].y = sde.ReflectInto(p.rs[i].y+p.cfg.Speed*math.Sin(theta), 0, p.area)
	}
}

// associate assigns every requester to its nearest EDP (the default serving
// EDP of the paper) and returns the per-EDP requester counts.
func (p *requesterPopulation) associate(agents []edp) []int {
	counts := make([]int, len(agents))
	for i := range p.rs {
		best, bestD := 0, math.Inf(1)
		for j := range agents {
			dx := agents[j].x - p.rs[i].x
			dy := agents[j].y - p.rs[i].y
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = j, d
			}
		}
		p.rs[i].home = best
		counts[best]++
	}
	return counts
}

// demand draws this epoch's request sets: reqs[i][k] requests arriving at
// EDP i for content k, and the per-EDP average declared timeliness per
// content (Definition 2). Contents are chosen per request by the day's view
// shares; timeliness declarations are the trace level plus bounded noise.
func (p *requesterPopulation) demand(
	agents []edp, shares, baseTimeliness []float64, lmax float64, rng *rand.Rand,
) (reqs [][]float64, timeliness [][]float64) {
	m := len(agents)
	k := len(shares)
	reqs = make([][]float64, m)
	sumL := make([][]float64, m)
	for i := 0; i < m; i++ {
		reqs[i] = make([]float64, k)
		sumL[i] = make([]float64, k)
	}
	p.associate(agents)
	for _, r := range p.rs {
		// Poisson-like request count for this requester.
		lam := p.cfg.RequestsPerRequester
		n := int(math.Max(0, math.Round(lam+math.Sqrt(lam)*rng.NormFloat64())))
		for q := 0; q < n; q++ {
			c := sampleShare(shares, rng)
			l := numerics.Clamp(baseTimeliness[c]+p.cfg.TimelinessNoise*rng.NormFloat64(), 0, lmax)
			reqs[r.home][c]++
			sumL[r.home][c] += l
		}
	}
	timeliness = make([][]float64, m)
	for i := 0; i < m; i++ {
		timeliness[i] = make([]float64, k)
		for c := 0; c < k; c++ {
			if reqs[i][c] > 0 {
				timeliness[i][c] = sumL[i][c] / reqs[i][c]
			} else {
				timeliness[i][c] = baseTimeliness[c]
			}
		}
	}
	return reqs, timeliness
}

// sampleShare draws a content index from the (normalised) share vector.
func sampleShare(shares []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for c, s := range shares {
		acc += s
		if u < acc {
			return c
		}
	}
	return len(shares) - 1
}

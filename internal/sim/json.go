package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mec"
	"repro/internal/policy"
	"repro/internal/resilience"
)

// JSON codec of the market configuration — the wire form behind the CLI's
// `market -config file.json` flag and any service endpoint that launches
// market runs. The policy is carried by its canonical name ("mfg-cp", "mfg",
// "rr", "mpc", "udcs"); policy tuning beyond the name, and the runtime-only
// fields (Obs, Context, Trace), are process-local and excluded from the wire
// form. Unmarshalling merges onto the receiver, so sparse documents decode
// onto DefaultConfig; unknown keys are rejected.

// configJSON mirrors Config's serialisable surface.
type configJSON struct {
	Params              mec.Params
	Policy              string `json:",omitempty"`
	Solver              core.Config
	Epochs              int
	StepsPerEpoch       int
	RequestsPerEDP      float64
	Seed                int64
	HeterogeneousDemand bool
	Requesters          RequesterConfig
	ExactInterference   bool
	EqCacheSize         int
	Area                float64
	Faults              *FaultPlan             `json:",omitempty"`
	Recovery            *resilience.Escalation `json:",omitempty"`
	Checkpoint          CheckpointConfig
}

func (c Config) toJSON() configJSON {
	j := configJSON{
		Params:              c.Params,
		Solver:              c.Solver,
		Epochs:              c.Epochs,
		StepsPerEpoch:       c.StepsPerEpoch,
		RequestsPerEDP:      c.RequestsPerEDP,
		Seed:                c.Seed,
		HeterogeneousDemand: c.HeterogeneousDemand,
		Requesters:          c.Requesters,
		ExactInterference:   c.ExactInterference,
		EqCacheSize:         c.EqCacheSize,
		Area:                c.Area,
		Faults:              c.Faults,
		Recovery:            c.Recovery,
		Checkpoint:          c.Checkpoint,
	}
	if c.Policy != nil {
		j.Policy = strings.ToLower(c.Policy.Name())
	}
	return j
}

// MarshalJSON implements json.Marshaler, carrying the policy by name and
// dropping the runtime-only fields (Obs, Context, Trace).
func (c Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.toJSON())
}

// UnmarshalJSON implements json.Unmarshaler with merge semantics: fields
// absent from data keep the receiver's current values, unknown fields are an
// error. A "Policy" name instantiates a fresh policy via policy.ByName; when
// absent the receiver's policy instance is kept. Callers validate the merged
// result with Validate.
func (c *Config) UnmarshalJSON(data []byte) error {
	shadow := c.toJSON()
	shadow.Policy = "" // only an explicit name replaces the policy instance
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&shadow); err != nil {
		return fmt.Errorf("sim: decode market config: %w", err)
	}
	if shadow.Policy != "" {
		pol, err := policy.ByName(shadow.Policy)
		if err != nil {
			return fmt.Errorf("sim: decode market config: %w", err)
		}
		c.Policy = pol
	}
	c.Params = shadow.Params
	c.Solver = shadow.Solver
	c.Epochs = shadow.Epochs
	c.StepsPerEpoch = shadow.StepsPerEpoch
	c.RequestsPerEDP = shadow.RequestsPerEDP
	c.Seed = shadow.Seed
	c.HeterogeneousDemand = shadow.HeterogeneousDemand
	c.Requesters = shadow.Requesters
	c.ExactInterference = shadow.ExactInterference
	c.EqCacheSize = shadow.EqCacheSize
	c.Area = shadow.Area
	c.Faults = shadow.Faults
	c.Recovery = shadow.Recovery
	c.Checkpoint = shadow.Checkpoint
	return nil
}

// DecodeConfig decodes a JSON document onto base (merge semantics) and
// validates the result — the entry point behind `market -config file.json`.
func DecodeConfig(data []byte, base Config) (Config, error) {
	cfg := base
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	// The epoch loop hands the solver config to the policy with the market's
	// model constants substituted in (EpochContext.Params wins), so validate
	// it under the same substitution.
	solver := cfg.Solver
	solver.Params = cfg.Params
	if err := solver.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

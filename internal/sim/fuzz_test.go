package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"io/fs"
	"testing"
	"time"
)

// fuzzSeedCheckpoint builds one small valid snapshot frame for the corpus.
func fuzzSeedCheckpoint(tb testing.TB) []byte {
	tb.Helper()
	ck := &Checkpoint{
		Seed: 1, PolicyName: "MFG-CP", M: 2, K: 2, Epochs: 3, StepsPerEpoch: 4,
		NextEpoch: 1, RNGDraws: 123, Prepared: true,
		Agents: []AgentState{
			{X: 1, Y: 2, H: 3, Q: []float64{4, 5}},
			{X: 6, Y: 7, H: 8, Q: []float64{9, 10}},
		},
		Ledgers:      make([]Ledger, 2),
		Stats:        []EpochStats{{Epoch: 0, MeanUtility: 1}},
		StrategyTime: time.Second,
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		tb.Fatal(err)
	}
	env := checkpointEnvelope{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		Sum:     crc32.ChecksumIEEE(payload.Bytes()),
		Data:    payload.Bytes(),
	}
	var frame bytes.Buffer
	if err := gob.NewEncoder(&frame).Encode(env); err != nil {
		tb.Fatal(err)
	}
	return frame.Bytes()
}

// FuzzCheckpointDecode pins the corruption contract of the snapshot reader:
// whatever bytes land on disk — truncated writes, bit flips, foreign files —
// decodeCheckpoint returns a structured error or a consistent snapshot, and
// never panics. Any decoded snapshot must satisfy its own sanity invariants.
func FuzzCheckpointDecode(f *testing.F) {
	valid := fuzzSeedCheckpoint(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	f.Add([]byte{})
	f.Add([]byte("mfgcp-market-checkpoint"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointVersion) {
				t.Fatalf("unstructured decode error: %v", err)
			}
			return
		}
		if ck == nil {
			t.Fatal("nil snapshot without error")
		}
		if err := ck.sane(); err != nil {
			t.Fatalf("decoded snapshot fails its own sanity check: %v", err)
		}
	})
}

// TestCheckpointRoundTrip complements the fuzz target with the positive path:
// write-then-load through the real file layer reproduces the snapshot exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want, err := decodeCheckpoint(bytes.NewReader(fuzzSeedCheckpoint(t)))
	if err != nil {
		t.Fatal(err)
	}
	want.CacheKeys = []string{"k"}
	want.CacheBlobs = [][]byte{{1, 2, 3}}
	want.PolicyState = []byte{4, 5}
	if err := WriteCheckpoint(dir, want); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if got.Seed != want.Seed || got.RNGDraws != want.RNGDraws || got.NextEpoch != want.NextEpoch ||
		len(got.Agents) != len(want.Agents) || got.StrategyTime != want.StrategyTime {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Agents[1].Q[1] != want.Agents[1].Q[1] {
		t.Fatal("agent state lost in round trip")
	}
	if !bytes.Equal(got.CacheBlobs[0], want.CacheBlobs[0]) || !bytes.Equal(got.PolicyState, want.PolicyState) {
		t.Fatal("opaque blobs lost in round trip")
	}

	// Writing into an unwritable location errors instead of corrupting.
	if err := WriteCheckpoint("", want); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := LoadCheckpoint(t.TempDir()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing snapshot: got %v, want fs.ErrNotExist", err)
	}
}

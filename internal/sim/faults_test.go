package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/resilience"
)

func faultyConfig(t *testing.T) Config {
	t.Helper()
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Epochs = 4
	return cfg
}

// TestFaultInjectedRunCompletes is the graceful-degradation acceptance test:
// a run under heavy churn, dropped shares and forced solver failures completes
// without aborting, while the resilience metrics report the recoveries.
func TestFaultInjectedRunCompletes(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg := faultyConfig(t)
	cfg.Obs = reg
	cfg.Faults = &FaultPlan{
		Seed:       7,
		EDPChurn:   0.4,
		DropShare:  0.5,
		SolverFail: 0.5,
	}
	e := resilience.DefaultEscalation()
	cfg.Recovery = &e

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("fault-injected run aborted: %v", err)
	}
	if len(res.Stats) != cfg.Epochs {
		t.Fatalf("run incomplete: %d of %d epochs", len(res.Stats), cfg.Epochs)
	}
	s := reg.Snapshot()
	if s.Counters["sim.fault.churned_edps"] == 0 {
		t.Errorf("no churn realised under EDPChurn=0.4: %+v", s.Counters)
	}
	if s.Counters["sim.fault.shares_dropped"] == 0 {
		t.Errorf("no shares dropped under DropShare=0.5")
	}
	if s.Counters["sim.fault.degraded_epochs"] == 0 {
		t.Errorf("no degraded epochs under SolverFail=0.5 (seed 7)")
	}
	if s.Counters["resilience.fallbacks"] == 0 {
		t.Errorf("degradations not reported under resilience.fallbacks")
	}
}

// TestFaultDeterminism pins that the fault universe derives solely from the
// plan seed: two identically configured runs match bit-for-bit, and a
// different fault seed produces a different outcome.
func TestFaultDeterminism(t *testing.T) {
	run := func(faultSeed int64) *Result {
		cfg := faultyConfig(t)
		cfg.Faults = &FaultPlan{Seed: faultSeed, EDPChurn: 0.3, DropShare: 0.3, SolverFail: 0.25}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(3), run(3)
	assertSameResult(t, a, b)
	c := run(4)
	same := true
	for i := range a.Ledgers {
		if a.Ledgers[i] != c.Ledgers[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different fault seeds produced identical ledgers")
	}
}

// TestFaultErrorBudget checks the per-run error budget: a plan whose forced
// solver failures exceed it fails the run with ErrBudgetExceeded.
func TestFaultErrorBudget(t *testing.T) {
	cfg := faultyConfig(t)
	cfg.Faults = &FaultPlan{Seed: 7, SolverFail: 1, ErrorBudget: 2}
	if _, err := Run(cfg); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}

	// The same plan with the budget lifted completes on the RR fallback.
	cfg2 := faultyConfig(t)
	cfg2.Faults = &FaultPlan{Seed: 7, SolverFail: 1}
	res, err := Run(cfg2)
	if err != nil {
		t.Fatalf("unlimited-budget run aborted: %v", err)
	}
	if len(res.Stats) != cfg2.Epochs {
		t.Fatalf("run incomplete: %d epochs", len(res.Stats))
	}
}

// TestFaultResumeBitForBit extends the resume acceptance to fault-injected
// runs: the per-epoch fault streams are stateless in the plan seed, so a
// killed-and-resumed faulty run matches the uninterrupted one exactly.
func TestFaultResumeBitForBit(t *testing.T) {
	plan := &FaultPlan{Seed: 11, EDPChurn: 0.3, DropShare: 0.4, SolverFail: 0.3}
	base := faultyConfig(t)
	base.Faults = plan
	want, err := Run(base)
	if err != nil {
		t.Fatalf("uninterrupted faulty run: %v", err)
	}

	dir := t.TempDir()
	killed := faultyConfig(t)
	killed.Faults = plan
	killed.Checkpoint = CheckpointConfig{Dir: dir}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed.Obs = &cancelAfter{Recorder: obs.Nop, name: "sim.checkpoint.writes", after: 2, cancel: cancel}
	if _, err := RunContext(ctx, killed); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("killed faulty run: got %v, want ErrInterrupted", err)
	}

	resumed := faultyConfig(t)
	resumed.Faults = plan
	resumed.Checkpoint = CheckpointConfig{Dir: dir, Resume: true}
	got, err := Run(resumed)
	if err != nil {
		t.Fatalf("resumed faulty run: %v", err)
	}
	assertSameResult(t, want, got)
}

// TestFaultPlanEpochSchedules sanity-checks the realised schedules: absence
// intervals lie inside the epoch and the solver-failure draw matches the
// probability extremes.
func TestFaultPlanEpochSchedules(t *testing.T) {
	fp := &FaultPlan{Seed: 1, EDPChurn: 1}
	ef := fp.epochFaults(0, 50, 20)
	if ef.churned != 50 {
		t.Fatalf("churned %d of 50 under probability 1", ef.churned)
	}
	for i := 0; i < 50; i++ {
		l, j := ef.leave[i], ef.join[i]
		if l < 0 || l >= 20 || j <= l || j > 20 {
			t.Fatalf("EDP %d absence [%d,%d) outside epoch", i, l, j)
		}
		if ef.active(i, l) {
			t.Fatalf("EDP %d active at its leave step", i)
		}
		if l > 0 && !ef.active(i, l-1) {
			t.Fatalf("EDP %d inactive before leaving", i)
		}
		if j < 20 && !ef.active(i, j) {
			t.Fatalf("EDP %d inactive at its rejoin step", i)
		}
	}
	never := &FaultPlan{Seed: 1}
	ef = never.epochFaults(0, 50, 20)
	if ef.churned != 0 || ef.solverFail || ef.dropShare() {
		t.Fatal("zero-probability plan realised faults")
	}
	always := &FaultPlan{Seed: 1, SolverFail: 1, DropShare: 1}
	ef = always.epochFaults(3, 5, 20)
	if !ef.solverFail || !ef.dropShare() {
		t.Fatal("probability-1 plan realised nothing")
	}
}

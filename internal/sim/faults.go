package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sde"
)

// ErrBudgetExceeded fails a fault-injected run whose number of degraded
// epochs exceeded FaultPlan.ErrorBudget.
var ErrBudgetExceeded = errors.New("sim: fault error budget exceeded")

// FaultPlan injects deterministic, seeded faults into a market run,
// reproducing the churn and failure modes a production edge deployment sees:
// EDPs joining and leaving mid-epoch, peer-share transactions dropped on the
// wire, and strategy determination (the equilibrium solve) failing outright.
// All decisions derive from Seed via independent per-epoch streams, so a
// fault-injected run is exactly reproducible and survives checkpoint/resume
// without carrying extra state.
//
// Instead of aborting, the epoch loop degrades: a failed strategy
// determination falls back to the last successfully prepared strategy (or a
// Random Replacement baseline when no epoch ever prepared), and dropped
// shares degrade the buyer to the cloud-fetch service case. Every degradation
// is reported under "sim.fault.*" and "resilience.*" metric names.
type FaultPlan struct {
	// Seed drives all fault decisions; independent of the simulation seed so
	// the same market can be replayed under different fault universes.
	Seed int64
	// EDPChurn is the per-EDP, per-epoch probability of churning: a churned
	// EDP leaves at a uniformly drawn step and stays absent until a drawn
	// rejoin step (possibly the epoch end). Absent EDPs neither trade nor
	// evolve their state, and peers probing them fall through to the cloud.
	EDPChurn float64
	// DropShare is the per-transaction probability that a qualified peer
	// share is dropped; the buyer then serves the request via the cloud
	// (Case 3) instead of aborting the trade.
	DropShare float64
	// SolverFail is the per-epoch probability that strategy determination is
	// forced to fail before it runs, exercising the degradation path even
	// when the solver itself is healthy.
	SolverFail float64
	// ErrorBudget bounds the number of degraded epochs the run tolerates:
	// exceeding it fails the run with ErrBudgetExceeded. Zero or negative
	// means unlimited (the run never aborts on degradation alone).
	ErrorBudget int
}

// Validate checks the fault plan.
func (fp *FaultPlan) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"EDPChurn", fp.EDPChurn}, {"DropShare", fp.DropShare}, {"SolverFail", fp.SolverFail}} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("sim: fault plan %s must be a probability in [0,1], got %g", p.name, p.v)
		}
	}
	return nil
}

// faultShareSalt decorrelates the transaction-level drop stream from the
// epoch-level churn/failure stream.
const faultShareSalt = 0x5ca1ab1e

// epochFaults is one epoch's realised fault schedule, drawn up-front from the
// plan's per-epoch streams so it is independent of the simulation RNG and of
// checkpoint/resume boundaries.
type epochFaults struct {
	solverFail  bool
	leave, join []int // per EDP: absent during steps [leave, join); leave<0 = present
	churned     int
	shareRng    *rand.Rand // per-epoch stream for transaction-level drops
	dropProb    float64
}

// epochFaults realises the plan for one epoch of m EDPs and steps steps.
func (fp *FaultPlan) epochFaults(epoch, m, steps int) *epochFaults {
	rng := sde.NewChildRNG(fp.Seed, epoch)
	ef := &epochFaults{
		leave:    make([]int, m),
		join:     make([]int, m),
		shareRng: sde.NewChildRNG(fp.Seed^faultShareSalt, epoch),
		dropProb: fp.DropShare,
	}
	ef.solverFail = fp.SolverFail > 0 && rng.Float64() < fp.SolverFail
	for i := 0; i < m; i++ {
		ef.leave[i], ef.join[i] = -1, -1
		if fp.EDPChurn > 0 && rng.Float64() < fp.EDPChurn {
			l := rng.Intn(steps)
			ef.leave[i] = l
			ef.join[i] = l + 1 + rng.Intn(steps-l) // in (l, steps]; == steps never rejoins
			ef.churned++
		}
	}
	return ef
}

// active reports whether EDP i participates in step s.
func (ef *epochFaults) active(i, s int) bool {
	return ef.leave[i] < 0 || s < ef.leave[i] || s >= ef.join[i]
}

// dropShare draws one transaction-level drop decision.
func (ef *epochFaults) dropShare() bool {
	return ef.dropProb > 0 && ef.shareRng.Float64() < ef.dropProb
}

package sim

import (
	"context"
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/policy"
)

// cancelAfter is a Recorder that cancels a context once a named counter
// reaches a threshold — the test's deterministic stand-in for a mid-run kill.
type cancelAfter struct {
	obs.Recorder
	name   string
	after  float64
	seen   float64
	cancel context.CancelFunc
}

func (c *cancelAfter) Add(name string, delta float64) {
	c.Recorder.Add(name, delta)
	if name == c.name {
		c.seen += delta
		if c.seen >= c.after {
			c.cancel()
		}
	}
}

// assertSameResult compares everything a resumed run must reproduce
// bit-for-bit. StrategyTime (and the Stats copy of it) is wall clock and is
// deliberately excluded.
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if got.PolicyName != want.PolicyName || got.M != want.M || got.Epochs != want.Epochs {
		t.Fatalf("metadata differs: %+v vs %+v", got, want)
	}
	if len(got.Ledgers) != len(want.Ledgers) {
		t.Fatalf("ledger count %d vs %d", len(got.Ledgers), len(want.Ledgers))
	}
	for i := range want.Ledgers {
		if got.Ledgers[i] != want.Ledgers[i] {
			t.Fatalf("ledger %d differs:\n got %+v\nwant %+v", i, got.Ledgers[i], want.Ledgers[i])
		}
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("stats count %d vs %d", len(got.Stats), len(want.Stats))
	}
	for e := range want.Stats {
		a, b := got.Stats[e], want.Stats[e]
		a.StrategyTime, b.StrategyTime = 0, 0
		if a != b {
			t.Fatalf("epoch %d stats differ:\n got %+v\nwant %+v", e, a, b)
		}
	}
	for i := range want.FinalQ {
		for k := range want.FinalQ[i] {
			if got.FinalQ[i][k] != want.FinalQ[i][k] {
				t.Fatalf("FinalQ[%d][%d]: %g vs %g", i, k, got.FinalQ[i][k], want.FinalQ[i][k])
			}
		}
		if got.FinalH[i] != want.FinalH[i] {
			t.Fatalf("FinalH[%d]: %g vs %g", i, got.FinalH[i], want.FinalH[i])
		}
	}
}

func resumableConfig(t *testing.T) Config {
	t.Helper()
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Epochs = 3
	cfg.EqCacheSize = 8
	cfg.Requesters = RequesterConfig{J: 10, Speed: 3, RequestsPerRequester: 6, TimelinessNoise: 0.3}
	return cfg
}

// TestCheckpointResumeBitForBit is the acceptance test of the resilience
// layer: a run killed after its first epoch-boundary snapshot and then resumed
// must produce a final Result — utilities, densities, ledgers — identical to
// an uninterrupted run of the same seed.
func TestCheckpointResumeBitForBit(t *testing.T) {
	baseline, err := Run(resumableConfig(t))
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	dir := t.TempDir()

	// Phase 1: run with checkpointing, "killed" right after the first
	// epoch-boundary snapshot lands on disk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := resumableConfig(t)
	killed.Checkpoint = CheckpointConfig{Dir: dir}
	killed.Obs = &cancelAfter{Recorder: obs.Nop, name: "sim.checkpoint.writes", after: 1, cancel: cancel}
	partial, err := RunContext(ctx, killed)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("killed run: got %v, want ErrInterrupted", err)
	}
	if partial == nil || len(partial.Stats) == 0 || len(partial.Stats) >= killed.Epochs {
		t.Fatalf("killed run returned no usable partial result: %+v", partial)
	}
	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("snapshot after kill: %v", err)
	}
	if ck.NextEpoch < 1 || ck.NextEpoch >= killed.Epochs {
		t.Fatalf("snapshot NextEpoch = %d, want mid-run", ck.NextEpoch)
	}

	// Phase 2: resume on a fresh policy instance and run to completion.
	resumed := resumableConfig(t)
	resumed.Checkpoint = CheckpointConfig{Dir: dir, Resume: true}
	reg := obs.NewRegistry(nil)
	resumed.Obs = reg
	full, err := Run(resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if reg.Snapshot().Counters["sim.checkpoint.resumes"] != 1 {
		t.Fatal("resume did not restore from the snapshot")
	}
	assertSameResult(t, baseline, full)
}

// TestCheckpointResumeFreshStart checks Resume against an empty directory
// starts a normal run instead of failing — the ergonomics that let the CLI
// pass -resume unconditionally.
func TestCheckpointResumeFreshStart(t *testing.T) {
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Checkpoint = CheckpointConfig{Dir: t.TempDir(), Resume: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("resume-from-nothing run: %v", err)
	}
	if len(res.Stats) != cfg.Epochs {
		t.Fatalf("run incomplete: %d epochs", len(res.Stats))
	}
}

// TestCheckpointResumeCompletedRun checks resuming a finished run returns the
// final state immediately without re-executing epochs.
func TestCheckpointResumeCompletedRun(t *testing.T) {
	dir := t.TempDir()
	cfg := resumableConfig(t)
	cfg.Checkpoint = CheckpointConfig{Dir: dir}
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}

	again := resumableConfig(t)
	again.Checkpoint = CheckpointConfig{Dir: dir, Resume: true}
	reg := obs.NewRegistry(nil)
	again.Obs = reg
	got, err := Run(again)
	if err != nil {
		t.Fatalf("resumed completed run: %v", err)
	}
	if reg.Snapshot().Counters["sim.epochs"] != 0 {
		t.Fatal("completed run re-executed epochs on resume")
	}
	assertSameResult(t, want, got)
}

// TestCheckpointMismatchRejected checks a snapshot from a different run
// configuration fails resume with ErrCheckpointMismatch instead of silently
// producing a chimera run.
func TestCheckpointMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Checkpoint = CheckpointConfig{Dir: dir}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("seed run: %v", err)
	}

	other := quickConfig(t, policy.NewMFGCP())
	other.Seed = cfg.Seed + 1
	other.Checkpoint = CheckpointConfig{Dir: dir, Resume: true}
	if _, err := Run(other); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("got %v, want ErrCheckpointMismatch", err)
	}
}

// TestCheckpointCorruptionDetected checks a truncated snapshot file surfaces
// as ErrCheckpointCorrupt — never a panic, never a silent fresh start.
func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig(t, policy.NewMFGCP())
	cfg.Checkpoint = CheckpointConfig{Dir: dir}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	path := filepath.Join(dir, checkpointFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("truncated snapshot: got %v, want ErrCheckpointCorrupt", err)
	}

	cfg2 := quickConfig(t, policy.NewMFGCP())
	cfg2.Checkpoint = CheckpointConfig{Dir: dir, Resume: true}
	if _, err := Run(cfg2); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("resume from truncated snapshot: got %v, want ErrCheckpointCorrupt", err)
	}
}

// TestInterruptWithoutCheckpoint checks cancellation without a checkpoint
// directory still flushes the partial result.
func TestInterruptWithoutCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickConfig(t, policy.NewMFGCP())
	res, err := RunContext(ctx, cfg)
	if !errors.Is(err, ErrInterrupted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrInterrupted wrapping context.Canceled", err)
	}
	if res == nil || len(res.FinalQ) != cfg.Params.M {
		t.Fatal("interrupted run did not flush a partial result")
	}
	if _, err := LoadCheckpoint(t.TempDir()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty dir: got %v, want fs.ErrNotExist", err)
	}
}

// TestValidateRejectsNonFinite covers the NaN/Inf hardening of the simulation
// and requester configurations.
func TestValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"NaN RequestsPerEDP", func(c *Config) { c.RequestsPerEDP = nan }},
		{"NaN Area", func(c *Config) { c.Area = nan }},
		{"zero Area", func(c *Config) { c.Area = 0 }},
		{"NaN requester speed", func(c *Config) { c.Requesters = RequesterConfig{J: 2, Speed: nan} }},
		{"NaN requests per requester", func(c *Config) {
			c.Requesters = RequesterConfig{J: 2, RequestsPerRequester: nan}
		}},
		{"NaN timeliness noise", func(c *Config) {
			c.Requesters = RequesterConfig{J: 2, TimelinessNoise: nan}
		}},
		{"NaN fault probability", func(c *Config) { c.Faults = &FaultPlan{EDPChurn: nan} }},
		{"fault probability above 1", func(c *Config) { c.Faults = &FaultPlan{DropShare: 1.5} }},
		{"negative checkpoint interval", func(c *Config) { c.Checkpoint.Every = -1 }},
		{"resume without dir", func(c *Config) { c.Checkpoint.Resume = true }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickConfig(t, policy.NewMFGCP())
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

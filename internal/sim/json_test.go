package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/mec"
	"repro/internal/policy"
	"repro/internal/resilience"
)

// TestMarketConfigJSONRoundTrip checks Marshal → Unmarshal reproduces the
// serialisable market configuration, including the policy (by name), the
// nested solver config and the resilience blocks.
func TestMarketConfigJSONRoundTrip(t *testing.T) {
	p := mec.Default()
	p.M, p.K = 12, 4
	pol, err := policy.ByName("mfg-cp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(p, pol)
	cfg.Epochs = 5
	cfg.StepsPerEpoch = 17
	cfg.Seed = 9
	cfg.EqCacheSize = 8
	cfg.ExactInterference = true
	cfg.Requesters = RequesterConfig{J: 30, Speed: 5, RequestsPerRequester: 2, TimelinessNoise: 0.5}
	cfg.Faults = &FaultPlan{Seed: 7, EDPChurn: 0.1, DropShare: 0.2, SolverFail: 0.1, ErrorBudget: 3}
	ladder := resilience.DefaultEscalation()
	cfg.Recovery = &ladder
	cfg.Checkpoint = CheckpointConfig{Dir: "/tmp/ck", Every: 2}
	cfg.Solver.NQ = 21

	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	base := DefaultConfig(mec.Default(), nil)
	got, err := DecodeConfig(data, base)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Policy == nil || got.Policy.Name() != "MFG-CP" {
		t.Fatalf("policy not restored: %v", got.Policy)
	}
	if got.Params != cfg.Params || got.Epochs != cfg.Epochs || got.StepsPerEpoch != cfg.StepsPerEpoch ||
		got.Seed != cfg.Seed || got.EqCacheSize != cfg.EqCacheSize || !got.ExactInterference ||
		got.Requesters != cfg.Requesters || got.Checkpoint != cfg.Checkpoint ||
		got.Solver.NQ != 21 {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, cfg)
	}
	if got.Faults == nil || *got.Faults != *cfg.Faults {
		t.Errorf("fault plan mismatch: %+v", got.Faults)
	}
	if got.Recovery == nil || *got.Recovery != *cfg.Recovery {
		t.Errorf("recovery ladder mismatch: %+v", got.Recovery)
	}
}

// TestMarketConfigJSONMergeAndRejection checks the merge semantics and the
// decoder's rejection paths (unknown keys, unknown policies, invalid values).
func TestMarketConfigJSONMergeAndRejection(t *testing.T) {
	base := DefaultConfig(mec.Default(), policy.NewRR())
	cfg, err := DecodeConfig([]byte(`{"Epochs": 7, "Policy": "udcs"}`), base)
	if err != nil {
		t.Fatalf("merge decode: %v", err)
	}
	if cfg.Epochs != 7 || cfg.Policy.Name() != "UDCS" {
		t.Errorf("overrides not applied: epochs=%d policy=%s", cfg.Epochs, cfg.Policy.Name())
	}
	if cfg.StepsPerEpoch != base.StepsPerEpoch || cfg.Area != base.Area {
		t.Errorf("absent fields did not keep base values: %+v", cfg)
	}
	// Absent policy name keeps the base instance.
	cfg, err = DecodeConfig([]byte(`{"Seed": 3}`), base)
	if err != nil {
		t.Fatalf("merge decode: %v", err)
	}
	if cfg.Policy != base.Policy {
		t.Errorf("absent policy name replaced the instance")
	}

	cases := []struct {
		name, doc, want string
	}{
		{"unknown key", `{"Epoch": 3}`, "unknown field"},
		{"unknown policy", `{"Policy": "lfu"}`, "unknown policy"},
		{"bad epochs", `{"Epochs": 0}`, "Epochs"},
		{"bad solver", `{"Solver": {"Tol": -1}}`, "Tol"},
		{"bad fault plan", `{"Faults": {"EDPChurn": 2}}`, "probability"},
		{"bad requesters", `{"Requesters": {"J": -1}}`, "requester"},
	}
	for _, tc := range cases {
		if _, err := DecodeConfig([]byte(tc.doc), base); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.doc)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

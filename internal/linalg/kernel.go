package linalg

// This file is the generic scalar core of the tridiagonal kernels: the Thomas
// factorisation and substitution passes, written once over a Float type
// parameter so the same code instantiates at float64 (the default, bit-exact
// solver path) and float32 (the opt-in fast path, half the memory traffic).
//
// The split into factorise + substitute is the seam the batched solver builds
// on: one sweep of the operator-split PDE schemes solves many lines against
// the same coefficient set, so the factorisation (cp, beta) is computed once
// and only the substitution runs per line. The substitution divides by the
// stored pivots beta[i] — the same values the fused Thomas loop divides by —
// so a factor-then-substitute solve is bit-identical to the historical fused
// Solve at float64.

// Float is the scalar type set of the tridiagonal kernels.
type Float interface {
	~float32 | ~float64
}

// tinyPivot is the zero-pivot threshold of the Thomas factorisation at each
// precision: far below any diagonally-dominant system the PDE schemes
// assemble, far above the smallest normal magnitude so the comparison itself
// stays exact.
func tinyPivot[T Float]() T {
	var t T
	switch any(t).(type) {
	case float32:
		return T(1e-30)
	default:
		return T(1e-300)
	}
}

func absT[T Float](x T) T {
	if x < 0 {
		return -x
	}
	return x
}

// thomasFactor runs the forward-elimination pass of the Thomas algorithm over
// the diagonals (a, b, c), storing the normalised super-diagonal in cp and
// the pivots in beta. It returns the row of the first (effectively) zero
// pivot, or -1 on success. a[0] and c[n-1] are ignored.
func thomasFactor[T Float](a, b, c, cp, beta []T) int {
	n := len(b)
	if n == 0 {
		return -1
	}
	tiny := tinyPivot[T]()
	piv := b[0]
	if absT(piv) < tiny {
		return 0
	}
	beta[0] = piv
	cp[0] = c[0] / piv
	for i := 1; i < n; i++ {
		piv = b[i] - a[i]*cp[i-1]
		if absT(piv) < tiny {
			return i
		}
		beta[i] = piv
		cp[i] = c[i] / piv
	}
	return -1
}

// thomasSolve runs the substitution passes against a stored factorisation
// (cp, beta): forward substitution into dp, back substitution into dst. dst
// may alias rhs; dp is scratch of length n and may alias neither.
func thomasSolve[T Float](a, cp, beta, dp, dst, rhs []T) {
	n := len(beta)
	if n == 0 {
		return
	}
	dp[0] = rhs[0] / beta[0]
	for i := 1; i < n; i++ {
		dp[i] = (rhs[i] - a[i]*dp[i-1]) / beta[i]
	}
	dst[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		dst[i] = dp[i] - cp[i]*dst[i+1]
	}
}

// thomasSolveInterleaved substitutes m right-hand sides through one stored
// factorisation in a single pass, in place on x. The m systems are
// interleaved: x[i*m+j] is component i of system j, the natural layout of a
// flattened 2-D field swept along its first (strided) dimension — every row
// visit is a contiguous run of length m, so the inner loops are unit-stride
// regardless of the logical line stride and no gather/scatter is needed.
//
// Each system undergoes exactly the per-element operations of thomasSolve
// (forward: (rhs − a·prev)/beta, backward: dp − cp·next), so the result is
// bit-identical to m scalar solves at either precision.
func thomasSolveInterleaved[T Float](a, cp, beta []T, x []T, m int) {
	n := len(beta)
	if n == 0 || m == 0 {
		return
	}
	// Forward substitution, in place: row 0 scales by the first pivot, every
	// later row folds in the row above.
	row0 := x[:m]
	piv := beta[0]
	for j := range row0 {
		row0[j] /= piv
	}
	for i := 1; i < n; i++ {
		ai, bi := a[i], beta[i]
		prev := x[(i-1)*m : i*m]
		row := x[i*m : (i+1)*m]
		for j := range row {
			row[j] = (row[j] - ai*prev[j]) / bi
		}
	}
	// Back substitution: the last row is final; every earlier row folds in
	// the row below.
	for i := n - 2; i >= 0; i-- {
		ci := cp[i]
		next := x[(i+1)*m : (i+2)*m]
		row := x[i*m : (i+1)*m]
		for j := range row {
			row[j] -= ci * next[j]
		}
	}
}

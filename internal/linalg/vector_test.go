package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(4)
	if len(v) != 4 {
		t.Fatalf("NewVector(4) has length %d", len(v))
	}
	v.Fill(2)
	if got := v.Sum(); got != 8 {
		t.Errorf("Sum after Fill(2) = %g, want 8", got)
	}
	w := v.Clone()
	w[0] = 100
	if v[0] != 2 {
		t.Errorf("Clone is not independent: v[0]=%g", v[0])
	}
	v.Scale(0.5)
	if got := v.Sum(); got != 4 {
		t.Errorf("Sum after Scale(0.5) = %g, want 4", got)
	}
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{10, 20, 30}
	if err := v.AddScaled(0.1, w); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	want := Vector{2, 4, 6}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	if err := v.AddScaled(1, Vector{1}); err == nil {
		t.Error("AddScaled with mismatched lengths should error")
	}
}

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	got, err := v.Dot(w)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if _, err := v.Dot(Vector{1}); err == nil {
		t.Error("Dot with mismatched lengths should error")
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %g, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
	if got := v.Max(); got != 3 {
		t.Errorf("Max = %g, want 3", got)
	}
	if got := v.Min(); got != -4 {
		t.Errorf("Min = %g, want -4", got)
	}
}

func TestVectorEmptyExtremes(t *testing.T) {
	var v Vector
	if !math.IsInf(v.Max(), -1) {
		t.Errorf("empty Max = %g, want -Inf", v.Max())
	}
	if !math.IsInf(v.Min(), 1) {
		t.Errorf("empty Min = %g, want +Inf", v.Min())
	}
}

func TestDistInf(t *testing.T) {
	d, err := DistInf(Vector{1, 2, 3}, Vector{1, 5, 3})
	if err != nil {
		t.Fatalf("DistInf: %v", err)
	}
	if d != 3 {
		t.Errorf("DistInf = %g, want 3", d)
	}
	if _, err := DistInf(Vector{1}, Vector{1, 2}); err == nil {
		t.Error("DistInf with mismatched lengths should error")
	}
}

func TestHasNaN(t *testing.T) {
	if (Vector{1, 2, 3}).HasNaN() {
		t.Error("finite vector reported NaN")
	}
	if !(Vector{1, math.NaN()}).HasNaN() {
		t.Error("NaN not detected")
	}
	if !(Vector{math.Inf(1)}).HasNaN() {
		t.Error("Inf not detected")
	}
}

// Property: the triangle inequality holds for Norm2.
func TestNorm2TriangleInequality(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, w := Vector(a[:]), Vector(b[:])
		sum := v.Clone()
		if err := sum.AddScaled(1, w); err != nil {
			return false
		}
		return sum.Norm2() <= v.Norm2()+w.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot(v, v) equals Norm2(v)² up to round-off.
func TestDotNormConsistency(t *testing.T) {
	f := func(a [6]float64) bool {
		v := Vector(a[:])
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				v[i] = 1 // keep magnitudes testable
			}
		}
		d, err := v.Dot(v)
		if err != nil {
			return false
		}
		n := v.Norm2()
		return math.Abs(d-n*n) <= 1e-9*(1+math.Abs(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Errorf("At(0,1) = %g, want 7", got)
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Error("Clone is not independent")
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	dst := NewVector(2)
	if err := m.MulVec(dst, Vector{1, 1}); err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", dst)
	}
	if err := m.MulVec(NewVector(3), Vector{1, 1}); err == nil {
		t.Error("bad dst should error")
	}
}

func TestLUSolveKnown(t *testing.T) {
	// [[2,1],[1,3]] x = [3,5] → x = [4/5, 7/5].
	m := NewDense(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := SolveDense(m, Vector{3, 5})
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Errorf("x = %v, want [0.8 1.4]", x)
	}
}

func TestLUSingular(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4) // rank 1
	if _, err := m.Factor(); err == nil {
		t.Error("singular matrix should fail to factor")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewDense(2, 3).Factor(); err == nil {
		t.Error("non-square factorisation should error")
	}
}

func TestLUDet(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 4)
	m.Set(1, 1, 2)
	f, err := m.Factor()
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if got := f.Det(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Det = %g, want 2", got)
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
			m.Add(i, i, float64(n)) // keep well conditioned
		}
		x := NewVector(n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := NewVector(n)
		if err := m.MulVec(b, x); err != nil {
			t.Fatalf("MulVec: %v", err)
		}
		got, err := SolveDense(m, b)
		if err != nil {
			t.Fatalf("SolveDense: %v", err)
		}
		d, _ := DistInf(got, x)
		if d > 1e-8 {
			t.Fatalf("trial %d: error %g", trial, d)
		}
	}
}

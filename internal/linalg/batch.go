package linalg

import (
	"fmt"
)

// TridiagBatch is an n×n tridiagonal system factorised once and substituted
// against many right-hand sides. It is the kernel the operator-split PDE
// sweeps are built on: every h-line (or q-line) of one diffusion sweep solves
// the same coefficient set, so the O(n) Thomas elimination runs once per
// sweep instead of once per line, and the interleaved substitution walks the
// flattened field with unit stride.
//
// The type is generic over the kernel precisions: TridiagBatch[float64] is
// the default bit-exact path, TridiagBatch[float32] the opt-in fast path.
// Usage: fill A, B and C (same layout as Tridiag: A[0] and C[n-1] ignored),
// call Factorize, then any number of Solve / SolveInterleaved calls. Writing
// to the diagonals does not invalidate the factorisation automatically —
// callers re-run Factorize after changing coefficients.
type TridiagBatch[T Float] struct {
	// A, B, C are the sub-, main- and super-diagonal, each of length n.
	A, B, C []T

	cp, beta []T // factorisation: normalised super-diagonal and pivots
	dp       []T // substitution scratch for the single-RHS Solve
	factored bool
}

// NewTridiagBatch allocates an n×n batched tridiagonal system with zeroed
// diagonals.
func NewTridiagBatch[T Float](n int) *TridiagBatch[T] {
	return &TridiagBatch[T]{
		A:    make([]T, n),
		B:    make([]T, n),
		C:    make([]T, n),
		cp:   make([]T, n),
		beta: make([]T, n),
		dp:   make([]T, n),
	}
}

// N returns the dimension of the system.
func (t *TridiagBatch[T]) N() int { return len(t.B) }

// Factorize runs the Thomas forward elimination over the current diagonals,
// storing the pivots for reuse by Solve and SolveInterleaved. A vanishing
// pivot returns ErrSingular and leaves the system unfactorised.
func (t *TridiagBatch[T]) Factorize() error {
	t.factored = false
	if row := thomasFactor(t.A, t.B, t.C, t.cp, t.beta); row >= 0 {
		return fmt.Errorf("%w: zero pivot at row %d", ErrSingular, row)
	}
	t.factored = true
	return nil
}

// Solve substitutes one right-hand side through the stored factorisation
// into dst (dst may alias rhs). Factorize must have succeeded since the
// diagonals were last written.
func (t *TridiagBatch[T]) Solve(dst, rhs []T) error {
	n := t.N()
	if !t.factored {
		return fmt.Errorf("linalg: TridiagBatch.Solve before Factorize")
	}
	if len(rhs) != n || len(dst) != n {
		return fmt.Errorf("%w: system %d, rhs %d, dst %d", ErrDimensionMismatch, n, len(rhs), len(dst))
	}
	thomasSolve(t.A, t.cp, t.beta, t.dp, dst, rhs)
	return nil
}

// SolveInterleaved substitutes m interleaved right-hand sides through the
// stored factorisation, in place on x: x[i*m+j] is component i of system j,
// so a flattened row-major 2-D field swept along its first dimension is
// solved directly, with no gather or scatter. len(x) must be N()*m. The
// per-system arithmetic is identical to Solve, so the results are
// bit-identical to m scalar solves.
func (t *TridiagBatch[T]) SolveInterleaved(x []T, m int) error {
	return t.SolveInterleavedRange(x, m, 0, m)
}

// SolveInterleavedRange is SolveInterleaved restricted to systems [jlo, jhi)
// of the m interleaved right-hand sides — the partition unit of parallel
// sweeps: disjoint column ranges touch disjoint elements of x, so workers
// solving different ranges never race, and the per-system operations do not
// depend on the partition.
func (t *TridiagBatch[T]) SolveInterleavedRange(x []T, m, jlo, jhi int) error {
	n := t.N()
	if !t.factored {
		return fmt.Errorf("linalg: TridiagBatch.SolveInterleaved before Factorize")
	}
	if m < 0 || len(x) != n*m {
		return fmt.Errorf("%w: system %d × batch %d, field %d", ErrDimensionMismatch, n, m, len(x))
	}
	if jlo < 0 || jhi > m || jlo > jhi {
		return fmt.Errorf("%w: batch range [%d,%d) outside [0,%d)", ErrDimensionMismatch, jlo, jhi, m)
	}
	if jlo == jhi {
		return nil
	}
	if jlo == 0 && jhi == m {
		thomasSolveInterleaved(t.A, t.cp, t.beta, x, m)
		return nil
	}
	thomasSolveInterleavedRange(t.A, t.cp, t.beta, x, m, jlo, jhi)
	return nil
}

// thomasSolveInterleavedRange is thomasSolveInterleaved over the column
// subrange [jlo, jhi): identical per-element operations, strided row access.
func thomasSolveInterleavedRange[T Float](a, cp, beta []T, x []T, m, jlo, jhi int) {
	n := len(beta)
	if n == 0 {
		return
	}
	row0 := x[jlo:jhi]
	piv := beta[0]
	for j := range row0 {
		row0[j] /= piv
	}
	for i := 1; i < n; i++ {
		ai, bi := a[i], beta[i]
		prev := x[(i-1)*m+jlo : (i-1)*m+jhi]
		row := x[i*m+jlo : i*m+jhi]
		for j := range row {
			row[j] = (row[j] - ai*prev[j]) / bi
		}
	}
	for i := n - 2; i >= 0; i-- {
		ci := cp[i]
		next := x[(i+1)*m+jlo : (i+1)*m+jhi]
		row := x[i*m+jlo : i*m+jhi]
		for j := range row {
			row[j] -= ci * next[j]
		}
	}
}

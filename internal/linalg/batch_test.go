package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// loadBatch copies a Tridiag's diagonals into a float64 batch.
func loadBatch(tri *Tridiag) *TridiagBatch[float64] {
	bat := NewTridiagBatch[float64](tri.N())
	copy(bat.A, tri.A)
	copy(bat.B, tri.B)
	copy(bat.C, tri.C)
	return bat
}

// Property: one batched factorisation + per-system substitution is
// bit-identical to N independent Tridiag.Solve calls.
func TestTridiagBatchBitEqualsScalarSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		m := 1 + rng.Intn(17)
		tri := randomDominantTridiag(rng, n)
		bat := loadBatch(tri)
		if err := bat.Factorize(); err != nil {
			t.Fatalf("Factorize: %v", err)
		}

		// Interleaved field: x[i*m+j] = component i of system j.
		field := make([]float64, n*m)
		for i := range field {
			field[i] = rng.NormFloat64()
		}

		// Reference: scalar solves, one per column.
		want := make([]float64, n*m)
		rhs, sol := NewVector(n), NewVector(n)
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				rhs[i] = field[i*m+j]
			}
			if err := tri.Solve(sol, rhs); err != nil {
				t.Fatalf("scalar Solve: %v", err)
			}
			for i := 0; i < n; i++ {
				want[i*m+j] = sol[i]
			}
		}

		// Batched in-place interleaved solve.
		got := append([]float64(nil), field...)
		if err := bat.SolveInterleaved(got, m); err != nil {
			t.Fatalf("SolveInterleaved: %v", err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: bit mismatch at %d: %v vs %v (diff %g)",
					trial, i, got[i], want[i], got[i]-want[i])
			}
		}

		// Single-RHS path through the same factorisation.
		for i := 0; i < n; i++ {
			rhs[i] = field[i*m]
		}
		one := make([]float64, n)
		if err := bat.Solve(one, rhs); err != nil {
			t.Fatalf("batch Solve: %v", err)
		}
		for i := 0; i < n; i++ {
			if one[i] != want[i*m] {
				t.Fatalf("trial %d: batch Solve differs at %d", trial, i)
			}
		}
	}
}

// Property: solving a column subrange touches exactly that subrange and
// produces the same bits as the full interleaved solve.
func TestTridiagBatchRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		m := 2 + rng.Intn(13)
		tri := randomDominantTridiag(rng, n)
		bat := loadBatch(tri)
		if err := bat.Factorize(); err != nil {
			t.Fatalf("Factorize: %v", err)
		}
		field := make([]float64, n*m)
		for i := range field {
			field[i] = rng.NormFloat64()
		}
		full := append([]float64(nil), field...)
		if err := bat.SolveInterleaved(full, m); err != nil {
			t.Fatalf("SolveInterleaved: %v", err)
		}
		// Partition [0,m) into three chunks solved separately.
		cut1, cut2 := m/3, 2*m/3
		parts := append([]float64(nil), field...)
		for _, r := range [][2]int{{0, cut1}, {cut1, cut2}, {cut2, m}} {
			if err := bat.SolveInterleavedRange(parts, m, r[0], r[1]); err != nil {
				t.Fatalf("SolveInterleavedRange(%v): %v", r, err)
			}
		}
		for i := range parts {
			if parts[i] != full[i] {
				t.Fatalf("trial %d: partitioned solve differs at %d", trial, i)
			}
		}
	}
}

// Tridiag.Factorize + repeated SolveFactored is bit-identical to repeated
// Solve, and mutating helpers invalidate the factorisation.
func TestTridiagSolveFactoredReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tri := randomDominantTridiag(rng, 24)
	if err := tri.Factorize(); err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	ref := randomDominantTridiag(rng, 24)
	copy(ref.A, tri.A)
	copy(ref.B, tri.B)
	copy(ref.C, tri.C)
	for k := 0; k < 5; k++ {
		rhs := NewVector(24)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		fast, slow := NewVector(24), NewVector(24)
		if err := tri.SolveFactored(fast, rhs); err != nil {
			t.Fatalf("SolveFactored: %v", err)
		}
		if err := ref.Solve(slow, rhs); err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("solve %d: SolveFactored differs at %d: %v vs %v", k, i, fast[i], slow[i])
			}
		}
	}

	tri.AddDiagonal(1)
	if err := tri.SolveFactored(NewVector(24), NewVector(24)); err == nil {
		t.Error("SolveFactored after AddDiagonal should require refactorisation")
	}
	if err := tri.Factorize(); err != nil {
		t.Fatalf("refactorise: %v", err)
	}
	if err := tri.SolveFactored(NewVector(24), NewVector(24)); err != nil {
		t.Errorf("SolveFactored after refactorise: %v", err)
	}
	tri.Reset()
	if err := tri.SolveFactored(NewVector(24), NewVector(24)); err == nil {
		t.Error("SolveFactored after Reset should require refactorisation")
	}
}

// The float32 instantiation solves well-conditioned systems to float32
// accuracy (sanity for the fast path; accuracy vs float64 is pinned by the
// verify-layer differential harness).
func TestTridiagBatchFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n, m := 40, 8
	tri := randomDominantTridiag(rng, n)
	bat64 := loadBatch(tri)
	bat32 := NewTridiagBatch[float32](n)
	for i := 0; i < n; i++ {
		bat32.A[i] = float32(tri.A[i])
		bat32.B[i] = float32(tri.B[i])
		bat32.C[i] = float32(tri.C[i])
	}
	if err := bat64.Factorize(); err != nil {
		t.Fatalf("float64 Factorize: %v", err)
	}
	if err := bat32.Factorize(); err != nil {
		t.Fatalf("float32 Factorize: %v", err)
	}
	f64 := make([]float64, n*m)
	f32 := make([]float32, n*m)
	for i := range f64 {
		f64[i] = rng.NormFloat64()
		f32[i] = float32(f64[i])
	}
	if err := bat64.SolveInterleaved(f64, m); err != nil {
		t.Fatalf("float64 solve: %v", err)
	}
	if err := bat32.SolveInterleaved(f32, m); err != nil {
		t.Fatalf("float32 solve: %v", err)
	}
	for i := range f64 {
		diff := math.Abs(f64[i] - float64(f32[i]))
		if diff > 1e-4*(1+math.Abs(f64[i])) {
			t.Fatalf("float32 solution off at %d: %g vs %g", i, f32[i], f64[i])
		}
	}
}

func TestTridiagBatchErrors(t *testing.T) {
	bat := NewTridiagBatch[float64](3)
	if err := bat.Factorize(); !errors.Is(err, ErrSingular) {
		t.Errorf("zero system should be singular, got %v", err)
	}
	if err := bat.Solve(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Error("Solve before successful Factorize should error")
	}
	bat.B[0], bat.B[1], bat.B[2] = 2, 2, 2
	if err := bat.Factorize(); err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if err := bat.Solve(make([]float64, 2), make([]float64, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("short dst should mismatch, got %v", err)
	}
	if err := bat.SolveInterleaved(make([]float64, 7), 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("wrong field size should mismatch, got %v", err)
	}
	if err := bat.SolveInterleavedRange(make([]float64, 6), 2, 1, 3); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("out-of-bounds range should mismatch, got %v", err)
	}
	if err := bat.SolveInterleavedRange(make([]float64, 6), 2, 1, 1); err != nil {
		t.Errorf("empty range should be a no-op, got %v", err)
	}
	if err := bat.SolveInterleaved(nil, 0); err != nil {
		t.Errorf("zero-width batch should be a no-op, got %v", err)
	}
}

// Batched interleaved substitution vs per-line factorise-and-solve — the
// speedup the h-sweeps of the PDE schemes get from coefficient sharing.
func BenchmarkTridiagBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	const n, m = 61, 128
	tri := randomDominantTridiag(rng, n)
	bat := loadBatch(tri)
	field := make([]float64, n*m)
	for i := range field {
		field[i] = rng.NormFloat64()
	}
	work := make([]float64, n*m)

	b.Run("scalar", func(b *testing.B) {
		rhs, sol := NewVector(n), NewVector(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < m; j++ {
				for i := 0; i < n; i++ {
					rhs[i] = field[i*m+j]
				}
				if err := tri.Solve(sol, rhs); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					work[i*m+j] = sol[i]
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := bat.Factorize(); err != nil {
				b.Fatal(err)
			}
			copy(work, field)
			if err := bat.SolveInterleaved(work, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

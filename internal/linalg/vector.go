// Package linalg provides the small dense and banded linear-algebra kernels
// used by the finite-difference PDE solvers: vectors, dense matrices with LU
// factorisation (used mostly to cross-check the banded solvers in tests), and
// a tridiagonal Thomas solver that carries the per-time-step implicit solves
// of the HJB and FPK schemes.
//
// Everything is written against plain []float64 so the hot paths allocate
// nothing once buffers are reused.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible sizes.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense float64 vector. The zero value is an empty vector.
type Vector []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// AddScaled sets v[i] += s*w[i] for all i. v and w must have equal length.
func (v Vector) AddScaled(s float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += s * w[i]
	}
	return nil
}

// Scale multiplies every element of v by s.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element. It returns -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element. It returns +Inf for an empty vector.
func (v Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// NormInf returns the maximum absolute value of the elements.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the sum of absolute values.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// DistInf returns the sup-norm distance between v and w.
func DistInf(v, w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var m float64
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// HasNaN reports whether any element is NaN or infinite.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

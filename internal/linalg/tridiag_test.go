package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTridiagSolveKnown(t *testing.T) {
	// System: [2 1; 1 2 1; 1 2] x = [4; 8; 8] → x = [1; 2; 3].
	tri := NewTridiag(3)
	tri.B.Fill(2)
	tri.A[1], tri.A[2] = 1, 1
	tri.C[0], tri.C[1] = 1, 1
	x := NewVector(3)
	if err := tri.Solve(x, Vector{4, 8, 8}); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := Vector{1, 2, 3}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestTridiagIdentity(t *testing.T) {
	tri := NewTridiag(5)
	tri.SetIdentity()
	rhs := Vector{1, -2, 3, -4, 5}
	x := NewVector(5)
	if err := tri.Solve(x, rhs); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range x {
		if x[i] != rhs[i] {
			t.Errorf("identity solve changed x[%d]: %g != %g", i, x[i], rhs[i])
		}
	}
}

func TestTridiagSingular(t *testing.T) {
	tri := NewTridiag(3) // all-zero system
	x := NewVector(3)
	if err := tri.Solve(x, Vector{1, 2, 3}); err == nil {
		t.Error("solving a zero matrix should return ErrSingular")
	}
}

func TestTridiagDimensionMismatch(t *testing.T) {
	tri := NewTridiag(3)
	tri.SetIdentity()
	if err := tri.Solve(NewVector(3), NewVector(2)); err == nil {
		t.Error("mismatched rhs should error")
	}
	if err := tri.MulVec(NewVector(2), NewVector(3)); err == nil {
		t.Error("mismatched dst should error")
	}
}

func TestTridiagSolveInPlace(t *testing.T) {
	tri := NewTridiag(4)
	tri.B.Fill(3)
	for i := 1; i < 4; i++ {
		tri.A[i] = -1
	}
	for i := 0; i < 3; i++ {
		tri.C[i] = -1
	}
	rhs := Vector{1, 2, 3, 4}
	ref := NewVector(4)
	if err := tri.Solve(ref, rhs.Clone()); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// In-place: dst aliases rhs.
	inplace := rhs.Clone()
	if err := tri.Solve(inplace, inplace); err != nil {
		t.Fatalf("in-place Solve: %v", err)
	}
	for i := range ref {
		if math.Abs(ref[i]-inplace[i]) > 1e-12 {
			t.Errorf("in-place result differs at %d: %g vs %g", i, inplace[i], ref[i])
		}
	}
}

// randomDominantTridiag builds a random diagonally dominant system.
func randomDominantTridiag(rng *rand.Rand, n int) *Tridiag {
	tri := NewTridiag(n)
	for i := 0; i < n; i++ {
		if i > 0 {
			tri.A[i] = rng.NormFloat64()
		}
		if i < n-1 {
			tri.C[i] = rng.NormFloat64()
		}
		tri.B[i] = math.Abs(tri.A[i]) + math.Abs(tri.C[i]) + 1 + rng.Float64()
	}
	return tri
}

// Property: Solve inverts MulVec on random diagonally dominant systems.
func TestTridiagSolveInvertsMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		tri := randomDominantTridiag(rng, n)
		if !tri.IsDiagonallyDominant() {
			t.Fatal("construction should be diagonally dominant")
		}
		x := NewVector(n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := NewVector(n)
		if err := tri.MulVec(b, x); err != nil {
			t.Fatalf("MulVec: %v", err)
		}
		got := NewVector(n)
		if err := tri.Solve(got, b); err != nil {
			t.Fatalf("Solve: %v", err)
		}
		d, _ := DistInf(got, x)
		if d > 1e-8 {
			t.Fatalf("trial %d: solve error %g", trial, d)
		}
	}
}

// Property: Thomas solution matches dense LU on the expanded matrix.
func TestTridiagMatchesDenseLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		tri := randomDominantTridiag(rng, n)
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xTri := NewVector(n)
		if err := tri.Solve(xTri, b); err != nil {
			t.Fatalf("Thomas: %v", err)
		}
		xDense, err := SolveDense(tri.Dense(), b)
		if err != nil {
			t.Fatalf("dense: %v", err)
		}
		d, _ := DistInf(xTri, xDense)
		if d > 1e-8 {
			t.Fatalf("trial %d: Thomas vs LU differ by %g", trial, d)
		}
	}
}

// Property (testing/quick): for diagonal systems, Solve divides elementwise.
func TestTridiagDiagonalQuick(t *testing.T) {
	f := func(diag [6]float64, rhs [6]float64) bool {
		tri := NewTridiag(6)
		for i := range diag {
			d := diag[i]
			if math.Abs(d) < 1e-6 || math.IsNaN(d) || math.IsInf(d, 0) {
				d = 1
			}
			tri.B[i] = d
		}
		b := Vector(rhs[:]).Clone()
		for i := range b {
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				b[i] = 0
			}
		}
		x := NewVector(6)
		if err := tri.Solve(x, b); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-b[i]/tri.B[i]) > 1e-9*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsDiagonallyDominantDetectsViolation(t *testing.T) {
	tri := NewTridiag(3)
	tri.B.Fill(1)
	tri.C[0] = 5 // row 0: |1| < |5|
	if tri.IsDiagonallyDominant() {
		t.Error("violation not detected")
	}
}

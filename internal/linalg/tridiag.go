package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation encounters an (effectively)
// zero pivot.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Tridiag is an n×n tridiagonal system
//
//	B[0]  C[0]
//	A[1]  B[1]  C[1]
//	      A[2]  B[2] C[2]
//	            ...
//	                 A[n-1] B[n-1]
//
// A[0] and C[n-1] are ignored. Tridiag is the workhorse of the operator-split
// implicit PDE schemes: each 1-D sweep of the HJB or FPK update is one Solve.
type Tridiag struct {
	A, B, C Vector // sub-, main-, super-diagonal, each of length n
	// factorisation and scratch buffers reused across Solve calls
	cp, beta, dp Vector
	factored     bool
}

// NewTridiag allocates an n×n tridiagonal system with zeroed diagonals.
func NewTridiag(n int) *Tridiag {
	return &Tridiag{
		A:    NewVector(n),
		B:    NewVector(n),
		C:    NewVector(n),
		cp:   NewVector(n),
		beta: NewVector(n),
		dp:   NewVector(n),
	}
}

// N returns the dimension of the system.
func (t *Tridiag) N() int { return len(t.B) }

// Reset zeroes all three diagonals so the system can be rebuilt in place.
func (t *Tridiag) Reset() {
	t.A.Fill(0)
	t.B.Fill(0)
	t.C.Fill(0)
	t.factored = false
}

// SetIdentity loads the identity matrix.
func (t *Tridiag) SetIdentity() {
	t.Reset()
	t.B.Fill(1)
}

// AddDiagonal adds s to every main-diagonal entry.
func (t *Tridiag) AddDiagonal(s float64) {
	for i := range t.B {
		t.B[i] += s
	}
	t.factored = false
}

// Factorize runs the Thomas forward elimination over the current diagonals
// and stores the pivots, so repeated SolveFactored calls skip the
// elimination. The mutating helpers (Reset, SetIdentity, AddDiagonal)
// invalidate the factorisation; after writing the diagonal slices directly,
// call Factorize again. A vanishing pivot returns ErrSingular.
func (t *Tridiag) Factorize() error {
	n := t.N()
	t.factored = false
	if len(t.cp) != n {
		t.cp = NewVector(n)
		t.dp = NewVector(n)
	}
	if len(t.beta) != n {
		t.beta = NewVector(n)
	}
	if row := thomasFactor(t.A, t.B, t.C, t.cp, t.beta); row >= 0 {
		return fmt.Errorf("%w: zero pivot at row %d", ErrSingular, row)
	}
	t.factored = true
	return nil
}

// SolveFactored substitutes one right-hand side through the factorisation
// stored by the last successful Factorize, into dst (dst may alias rhs). The
// substitution divides by the stored pivots — the same values the fused
// elimination divides by — so Factorize+SolveFactored is bit-identical to
// Solve.
func (t *Tridiag) SolveFactored(dst, rhs Vector) error {
	n := t.N()
	if !t.factored {
		return fmt.Errorf("linalg: SolveFactored before Factorize")
	}
	if len(rhs) != n || len(dst) != n {
		return fmt.Errorf("%w: system %d, rhs %d, dst %d", ErrDimensionMismatch, n, len(rhs), len(dst))
	}
	thomasSolve(t.A, t.cp, t.beta, t.dp, dst, rhs)
	return nil
}

// Solve solves the system in-place into dst (dst may alias rhs). It uses the
// Thomas algorithm, which is stable for the diagonally-dominant systems the
// PDE schemes produce; a vanishing pivot returns ErrSingular. Solve always
// refactorises; when the coefficients are unchanged between solves, use
// Factorize once and SolveFactored per right-hand side.
func (t *Tridiag) Solve(dst, rhs Vector) error {
	n := t.N()
	if len(rhs) != n || len(dst) != n {
		return fmt.Errorf("%w: system %d, rhs %d, dst %d", ErrDimensionMismatch, n, len(rhs), len(dst))
	}
	if n == 0 {
		return nil
	}
	if err := t.Factorize(); err != nil {
		return err
	}
	thomasSolve(t.A, t.cp, t.beta, t.dp, dst, rhs)
	return nil
}

// MulVec computes dst = T*v. dst must not alias v.
func (t *Tridiag) MulVec(dst, v Vector) error {
	n := t.N()
	if len(v) != n || len(dst) != n {
		return fmt.Errorf("%w: system %d, v %d, dst %d", ErrDimensionMismatch, n, len(v), len(dst))
	}
	for i := 0; i < n; i++ {
		s := t.B[i] * v[i]
		if i > 0 {
			s += t.A[i] * v[i-1]
		}
		if i < n-1 {
			s += t.C[i] * v[i+1]
		}
		dst[i] = s
	}
	return nil
}

// IsDiagonallyDominant reports whether |B[i]| >= |A[i]|+|C[i]| on every row,
// the sufficient condition for the Thomas algorithm to be stable. The schemes
// in internal/pde are constructed so this always holds; it is checked in
// tests and available for debugging assertions.
func (t *Tridiag) IsDiagonallyDominant() bool {
	n := t.N()
	for i := 0; i < n; i++ {
		off := 0.0
		if i > 0 {
			off += math.Abs(t.A[i])
		}
		if i < n-1 {
			off += math.Abs(t.C[i])
		}
		if math.Abs(t.B[i]) < off-1e-12 {
			return false
		}
	}
	return true
}

// Dense expands the tridiagonal system into a dense matrix (test helper).
func (t *Tridiag) Dense() *Dense {
	n := t.N()
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, t.B[i])
		if i > 0 {
			d.Set(i, i-1, t.A[i])
		}
		if i < n-1 {
			d.Set(i, i+1, t.C[i])
		}
	}
	return d
}

package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation encounters an (effectively)
// zero pivot.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Tridiag is an n×n tridiagonal system
//
//	B[0]  C[0]
//	A[1]  B[1]  C[1]
//	      A[2]  B[2] C[2]
//	            ...
//	                 A[n-1] B[n-1]
//
// A[0] and C[n-1] are ignored. Tridiag is the workhorse of the operator-split
// implicit PDE schemes: each 1-D sweep of the HJB or FPK update is one Solve.
type Tridiag struct {
	A, B, C Vector // sub-, main-, super-diagonal, each of length n
	// scratch buffers reused across Solve calls
	cp, dp Vector
}

// NewTridiag allocates an n×n tridiagonal system with zeroed diagonals.
func NewTridiag(n int) *Tridiag {
	return &Tridiag{
		A:  NewVector(n),
		B:  NewVector(n),
		C:  NewVector(n),
		cp: NewVector(n),
		dp: NewVector(n),
	}
}

// N returns the dimension of the system.
func (t *Tridiag) N() int { return len(t.B) }

// Reset zeroes all three diagonals so the system can be rebuilt in place.
func (t *Tridiag) Reset() {
	t.A.Fill(0)
	t.B.Fill(0)
	t.C.Fill(0)
}

// SetIdentity loads the identity matrix.
func (t *Tridiag) SetIdentity() {
	t.Reset()
	t.B.Fill(1)
}

// AddDiagonal adds s to every main-diagonal entry.
func (t *Tridiag) AddDiagonal(s float64) {
	for i := range t.B {
		t.B[i] += s
	}
}

// Solve solves the system in-place into dst (dst may alias rhs). It uses the
// Thomas algorithm, which is stable for the diagonally-dominant systems the
// PDE schemes produce; a vanishing pivot returns ErrSingular.
func (t *Tridiag) Solve(dst, rhs Vector) error {
	n := t.N()
	if len(rhs) != n || len(dst) != n {
		return fmt.Errorf("%w: system %d, rhs %d, dst %d", ErrDimensionMismatch, n, len(rhs), len(dst))
	}
	if n == 0 {
		return nil
	}
	if len(t.cp) != n {
		t.cp = NewVector(n)
		t.dp = NewVector(n)
	}
	const tiny = 1e-300
	beta := t.B[0]
	if math.Abs(beta) < tiny {
		return fmt.Errorf("%w: zero pivot at row 0", ErrSingular)
	}
	t.cp[0] = t.C[0] / beta
	t.dp[0] = rhs[0] / beta
	for i := 1; i < n; i++ {
		beta = t.B[i] - t.A[i]*t.cp[i-1]
		if math.Abs(beta) < tiny {
			return fmt.Errorf("%w: zero pivot at row %d", ErrSingular, i)
		}
		t.cp[i] = t.C[i] / beta
		t.dp[i] = (rhs[i] - t.A[i]*t.dp[i-1]) / beta
	}
	dst[n-1] = t.dp[n-1]
	for i := n - 2; i >= 0; i-- {
		dst[i] = t.dp[i] - t.cp[i]*dst[i+1]
	}
	return nil
}

// MulVec computes dst = T*v. dst must not alias v.
func (t *Tridiag) MulVec(dst, v Vector) error {
	n := t.N()
	if len(v) != n || len(dst) != n {
		return fmt.Errorf("%w: system %d, v %d, dst %d", ErrDimensionMismatch, n, len(v), len(dst))
	}
	for i := 0; i < n; i++ {
		s := t.B[i] * v[i]
		if i > 0 {
			s += t.A[i] * v[i-1]
		}
		if i < n-1 {
			s += t.C[i] * v[i+1]
		}
		dst[i] = s
	}
	return nil
}

// IsDiagonallyDominant reports whether |B[i]| >= |A[i]|+|C[i]| on every row,
// the sufficient condition for the Thomas algorithm to be stable. The schemes
// in internal/pde are constructed so this always holds; it is checked in
// tests and available for debugging assertions.
func (t *Tridiag) IsDiagonallyDominant() bool {
	n := t.N()
	for i := 0; i < n; i++ {
		off := 0.0
		if i > 0 {
			off += math.Abs(t.A[i])
		}
		if i < n-1 {
			off += math.Abs(t.C[i])
		}
		if math.Abs(t.B[i]) < off-1e-12 {
			return false
		}
	}
	return true
}

// Dense expands the tridiagonal system into a dense matrix (test helper).
func (t *Tridiag) Dense() *Dense {
	n := t.N()
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, t.B[i])
		if i > 0 {
			d.Set(i, i-1, t.A[i])
		}
		if i < n-1 {
			d.Set(i, i+1, t.C[i])
		}
	}
	return d
}

package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. It exists mainly to cross-check the
// banded solvers in tests and to solve the tiny systems that appear in the
// baseline policies (e.g. least-squares popularity fits).
type Dense struct {
	Rows, Cols int
	Data       Vector // len Rows*Cols, row-major
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: NewVector(r * c)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MulVec computes dst = M*v.
func (m *Dense) MulVec(dst, v Vector) error {
	if len(v) != m.Cols || len(dst) != m.Rows {
		return fmt.Errorf("%w: matrix %dx%d, v %d, dst %d", ErrDimensionMismatch, m.Rows, m.Cols, len(v), len(dst))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		dst[i] = s
	}
	return nil
}

// LU holds a PA=LU factorisation with partial pivoting.
type LU struct {
	lu   *Dense
	perm []int
	sign int
}

// Factor computes the LU factorisation of a square matrix.
func (m *Dense) Factor() (*LU, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: LU requires square matrix, got %dx%d", ErrDimensionMismatch, m.Rows, m.Cols)
	}
	n := m.Rows
	lu := m.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// partial pivot
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				p, best = i, a
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, k)
		}
		if p != k {
			ri := lu.Data[p*n : (p+1)*n]
			rk := lu.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			perm[p], perm[k] = perm[k], perm[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

// Solve solves A*x = b using the factorisation. dst may alias b.
func (f *LU) Solve(dst, b Vector) error {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("%w: system %d, b %d, dst %d", ErrDimensionMismatch, n, len(b), len(dst))
	}
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.perm[i]]
	}
	// forward substitution (unit lower)
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * y[j]
		}
		y[i] -= s
	}
	// back substitution
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * y[j]
		}
		y[i] = (y[i] - s) / f.lu.At(i, i)
	}
	copy(dst, y)
	return nil
}

// Det returns the determinant from the factorisation.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense is a convenience wrapper: factor A and solve A*x=b.
func SolveDense(a *Dense, b Vector) (Vector, error) {
	f, err := a.Factor()
	if err != nil {
		return nil, err
	}
	x := make(Vector, len(b))
	if err := f.Solve(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

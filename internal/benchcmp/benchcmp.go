// Package benchcmp parses `go test -bench` output and compares it against a
// stored baseline (BENCH_baseline.json at the repository root), flagging
// per-benchmark ns/op movements beyond a relative threshold. It is the
// library behind the `benchdiff` tool and the informational CI bench job:
// machine variance makes absolute times meaningless across hosts, so the
// comparison is advisory — a flagged regression asks for a human look, it
// does not fail the build.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches one `go test -bench` result line: name (with the
// trailing -GOMAXPROCS tag), iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// Parse extracts benchmark results from `go test -bench` output, tolerating
// the interleaved non-benchmark lines (goos/goarch headers, PASS, ok). The
// -GOMAXPROCS suffix is stripped so baselines compare across machines.
// Repeated runs of one benchmark keep the fastest ns/op (the conventional
// noise-robust summary for regression checks).
func Parse(r io.Reader) ([]Result, error) {
	byName := make(map[string]Result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		res := Result{Name: m[1]}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: %s: bad value %q: %w", res.Name, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if res.NsPerOp == 0 {
			continue // metric-only lines (custom units) are not comparable
		}
		if prev, ok := byName[res.Name]; !ok {
			byName[res.Name] = res
			order = append(order, res.Name)
		} else if res.NsPerOp < prev.NsPerOp {
			byName[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	return out, nil
}

// Baseline is the stored reference measurement set.
type Baseline struct {
	// Note documents how the baseline was produced (host class, benchtime).
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: %s carries no benchmarks", path)
	}
	return &b, nil
}

// NewBaseline builds a baseline from parsed results.
func NewBaseline(note string, results []Result) *Baseline {
	b := &Baseline{Note: note, Benchmarks: make(map[string]Result, len(results))}
	for _, r := range results {
		b.Benchmarks[r.Name] = r
	}
	return b
}

// Write stores the baseline as indented JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Delta is one baseline-vs-current comparison row.
type Delta struct {
	Name      string
	Base, Cur float64 // ns/op; Cur == 0 means missing from the current run
	Ratio     float64 // Cur / Base
	Regressed bool    // Ratio beyond 1 + threshold
	Improved  bool    // Ratio below 1 − threshold
}

// Compare matches the current results against the baseline. Benchmarks
// absent from either side are reported with a zero counterpart rather than
// dropped (a silently vanished benchmark is itself a regression signal).
func Compare(base *Baseline, current []Result, threshold float64) []Delta {
	curByName := make(map[string]Result, len(current))
	for _, r := range current {
		curByName[r.Name] = r
	}
	var out []Delta
	for name, b := range base.Benchmarks {
		d := Delta{Name: name, Base: b.NsPerOp}
		if c, ok := curByName[name]; ok {
			d.Cur = c.NsPerOp
			d.Ratio = c.NsPerOp / b.NsPerOp
			d.Regressed = d.Ratio > 1+threshold
			d.Improved = d.Ratio < 1-threshold
		}
		out = append(out, d)
		delete(curByName, name)
	}
	for name, c := range curByName {
		out = append(out, Delta{Name: name, Cur: c.NsPerOp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Regressions filters the deltas down to flagged slowdowns and benchmarks
// missing from the current run.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed || (d.Cur == 0 && d.Base > 0) {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the deltas as an aligned text table.
func Format(w io.Writer, deltas []Delta) {
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "current ns/op", "delta")
	for _, d := range deltas {
		switch {
		case d.Cur == 0:
			fmt.Fprintf(w, "%-40s %14.0f %14s %8s\n", d.Name, d.Base, "-", "MISSING")
		case d.Base == 0:
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s\n", d.Name, "-", d.Cur, "NEW")
		default:
			tag := ""
			if d.Regressed {
				tag = "  REGRESSED"
			} else if d.Improved {
				tag = "  improved"
			}
			fmt.Fprintf(w, "%-40s %14.0f %14.0f %+7.1f%%%s\n",
				d.Name, d.Base, d.Cur, 100*(d.Ratio-1), tag)
		}
	}
}

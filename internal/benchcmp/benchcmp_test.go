package benchcmp

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU
BenchmarkHJBSolve-8         	     100	    120000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkFPKSolve-8         	     200	     60000 ns/op
BenchmarkEquilibriumSolve-8 	      10	   1500000 ns/op	       0 B/op	       0 allocs/op
BenchmarkHJBSolve-8         	     120	    110000 ns/op	    2048 B/op	      12 allocs/op
PASS
ok  	repro	3.456s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	byName := make(map[string]Result)
	for _, r := range results {
		byName[r.Name] = r
	}
	hjb := byName["BenchmarkHJBSolve"]
	if hjb.NsPerOp != 110000 { // fastest of the two runs
		t.Errorf("HJBSolve ns/op = %g, want the faster 110000", hjb.NsPerOp)
	}
	if hjb.BytesPerOp != 2048 || hjb.AllocsPerOp != 12 {
		t.Errorf("HJBSolve alloc stats = %g B / %g allocs", hjb.BytesPerOp, hjb.AllocsPerOp)
	}
	if byName["BenchmarkFPKSolve"].NsPerOp != 60000 {
		t.Errorf("FPKSolve missing or wrong: %+v", byName["BenchmarkFPKSolve"])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := NewBaseline("test", []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 100},
	})
	current := []Result{
		{Name: "BenchmarkA", NsPerOp: 120}, // +20% > 15%: regressed
		{Name: "BenchmarkB", NsPerOp: 108}, // +8%: within noise
		{Name: "BenchmarkNew", NsPerOp: 50},
	}
	deltas := Compare(base, current, 0.15)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(deltas), deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want A and Gone: %+v", len(regs), regs)
	}
	names := map[string]bool{}
	for _, d := range regs {
		names[d.Name] = true
	}
	if !names["BenchmarkA"] || !names["BenchmarkGone"] {
		t.Errorf("wrong regression set: %+v", regs)
	}

	var buf bytes.Buffer
	Format(&buf, deltas)
	out := buf.String()
	for _, want := range []string{"REGRESSED", "MISSING", "NEW", "BenchmarkB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	base := NewBaseline("round trip", []Result{{Name: "BenchmarkX", NsPerOp: 42, AllocsPerOp: 1}})
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "round trip" || got.Benchmarks["BenchmarkX"].NsPerOp != 42 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestParseRejectsNothingSilently(t *testing.T) {
	results, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed phantom results: %+v", results)
	}
}

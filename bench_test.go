// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artefact), the ablation benches called out in DESIGN.md
// §5, and micro-benchmarks of the numerical kernels. Run with
//
//	go test -bench=. -benchmem
//
// The per-figure benches use the experiments' quick mode so a full sweep
// stays tractable; shapes (who wins, scaling in M, …) are identical to the
// full-size runs and asserted by the test suite.
package mfgcp_test

import (
	"fmt"
	"testing"

	mfgcp "repro"
	"repro/internal/core"
	"repro/internal/exactgame"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/mec"
	"repro/internal/obs"
	"repro/internal/pde"
	"repro/internal/policy"
	"repro/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := experiments.Options{Seed: 1, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, opt); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// --- One benchmark per paper artefact ---------------------------------------

func BenchmarkFig3ChannelEvolution(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4MeanFieldEvolution(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5CachingPolicy(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6HeatmapQk(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig7HeatmapSigma(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8PlacementCostSweep(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9Convergence(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10InitialDistribution(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11Eta1Sweep(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12SchemesVsEta1(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13PopularitySweep(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14SchemeComparison(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkTable2ComputationTime(b *testing.B)    { benchExperiment(b, "table2") }

// --- Ablations (DESIGN.md §5) ------------------------------------------------

func quickSolver() core.Config {
	cfg := core.DefaultConfig(mec.Default())
	cfg.NH, cfg.NQ, cfg.Steps, cfg.MaxIters = 7, 31, 48, 30
	return cfg
}

var benchWorkload = core.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}

// Conservative (divergence-form) vs paper-literal advective FPK form inside
// the full equilibrium solve.
func BenchmarkAblationFPKForm(b *testing.B) {
	for _, form := range []struct {
		name string
		form pde.FPKForm
	}{{"conservative", pde.Conservative}, {"advective", pde.Advective}} {
		b.Run(form.name, func(b *testing.B) {
			cfg := quickSolver()
			cfg.FPKForm = form.form
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(cfg, benchWorkload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Damped vs undamped best-response iteration: the undamped variant is the
// literal Algorithm 2; damping trades per-iteration cost for robustness.
func BenchmarkAblationDamping(b *testing.B) {
	for _, damp := range []float64{1.0, 0.6, 0.3} {
		b.Run(fmt.Sprintf("gamma=%.1f", damp), func(b *testing.B) {
			cfg := quickSolver()
			cfg.Damping = damp
			var iters int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eq, err := core.Solve(cfg, benchWorkload)
				if err != nil {
					b.Fatal(err)
				}
				iters = eq.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// Mean-field vs exact pairwise interference in the market simulator.
func BenchmarkAblationInterference(b *testing.B) {
	for _, exact := range []bool{false, true} {
		name := "mean-field"
		if exact {
			name = "exact-SINR"
		}
		b.Run(name, func(b *testing.B) {
			p := mec.Default()
			p.M = 40
			p.K = 3
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(p, policy.NewMPC())
				cfg.Epochs = 1
				cfg.StepsPerEpoch = 20
				cfg.ExactInterference = exact
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Grid-resolution scaling of the coupled solve (the implicit split scheme is
// unconditionally stable, so the time step need not shrink with the grid).
func BenchmarkAblationGridResolution(b *testing.B) {
	for _, nq := range []int{21, 41, 81} {
		b.Run(fmt.Sprintf("NQ=%d", nq), func(b *testing.B) {
			cfg := quickSolver()
			cfg.NQ = nq
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(cfg, benchWorkload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Telemetry overhead on the full coupled solve: "off" runs with the implicit
// no-op recorder (the default), "nop" injects obs.Nop explicitly, "registry"
// records live metrics. off ≈ nop bounds the instrumentation cost of the
// disabled path (<2% required); registry bounds the cost of recording.
func BenchmarkAblationRecorder(b *testing.B) {
	for _, variant := range []struct {
		name string
		rec  obs.Recorder
	}{{"off", nil}, {"nop", obs.Nop}, {"registry", obs.NewRegistry(nil)}} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := quickSolver()
			cfg.Obs = variant.rec
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(cfg, benchWorkload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks of the numerical kernels -------------------------------

func BenchmarkTridiagSolve(b *testing.B) {
	const n = 256
	tri := linalg.NewTridiag(n)
	for i := 0; i < n; i++ {
		if i > 0 {
			tri.A[i] = -1
		}
		if i < n-1 {
			tri.C[i] = -1
		}
		tri.B[i] = 4
	}
	rhs := linalg.NewVector(n)
	for i := range rhs {
		rhs[i] = float64(i % 7)
	}
	dst := linalg.NewVector(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tri.Solve(dst, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHJBSolve(b *testing.B) {
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 1, Max: 10, N: 9},
		grid.Axis{Min: 0, Max: 100, N: 41},
	)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := grid.NewTimeMesh(1, 60)
	if err != nil {
		b.Fatal(err)
	}
	prob := &pde.HJBProblem{
		Grid:    g,
		Time:    tm,
		DiffH:   0.125,
		DiffQ:   50,
		DriftH:  func(_, h float64) float64 { return 5 - h },
		DriftQ:  func(_, x float64) float64 { return -100 * x },
		Control: func(_, _, _, dV float64) float64 { return mfgcp.OptimalControl(mec.Default(), dV) },
		Running: func(_, x, h, q float64) float64 { return 10 - x*x - 0.01*q },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pde.SolveHJB(prob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPKSolve(b *testing.B) {
	g, err := grid.NewGrid2D(
		grid.Axis{Min: 1, Max: 10, N: 9},
		grid.Axis{Min: 0, Max: 100, N: 41},
	)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := grid.NewTimeMesh(1, 60)
	if err != nil {
		b.Fatal(err)
	}
	init, err := pde.GaussianDensity(g, 5, 1, 70, 10)
	if err != nil {
		b.Fatal(err)
	}
	prob := &pde.FPKProblem{
		Grid:   g,
		Time:   tm,
		DiffH:  0.125,
		DiffQ:  50,
		DriftH: func(_, h float64) float64 { return 5 - h },
		DriftQ: func(_, _, q float64) float64 { return -0.5 * (q - 40) },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pde.SolveFPK(prob, init); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquilibriumSolve(b *testing.B) {
	cfg := quickSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(cfg, benchWorkload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarketEpoch(b *testing.B) {
	p := mec.Default()
	p.M = 50
	p.K = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(p, policy.NewRR())
		cfg.Epochs = 1
		cfg.StepsPerEpoch = 30
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRolloutEnsemble(b *testing.B) {
	eq, err := core.Solve(quickSolver(), benchWorkload)
	if err != nil {
		b.Fatal(err)
	}
	p := mec.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eq.EnsembleRollout(p.ChMean, 70, int64(i), 16); err != nil {
			b.Fatal(err)
		}
	}
}

// Implicit vs explicit time stepping inside the full equilibrium solve. The
// explicit integrator skips the tridiagonal solves but must respect the CFL
// bound (the quick solver's mesh satisfies it).
func BenchmarkAblationScheme(b *testing.B) {
	for _, stepping := range []struct {
		name string
		s    pde.Stepping
	}{{"implicit", pde.Implicit}, {"explicit", pde.Explicit}} {
		b.Run(stepping.name, func(b *testing.B) {
			cfg := quickSolver()
			cfg.Stepping = stepping.s
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(cfg, benchWorkload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Finite-M exact game vs the mean-field solve: the per-round cost of the
// original game grows linearly in M (O(M·K·ψ)) while MFG-CP is flat — the
// scalability argument behind Fig. 2 and Table II.
func BenchmarkExactGameVsMFG(b *testing.B) {
	w := core.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}
	cfg := exactgame.DefaultConfig(mec.Default())
	cfg.NH, cfg.NQ, cfg.Steps = 5, 21, 30
	for _, m := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("exact/M=%d", m), func(b *testing.B) {
			inits := make([]exactgame.AgentInit, m)
			for i := range inits {
				inits[i] = exactgame.AgentInit{MeanQ: 70, StdQ: 10}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exactgame.Solve(cfg, w, inits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("mean-field", func(b *testing.B) {
		mcfg := core.DefaultConfig(mec.Default())
		mcfg.NH, mcfg.NQ, mcfg.Steps = 5, 21, 30
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(mcfg, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Knapsack allocators for the capacity-constrained extension (the paper's
// Section IV-C Remark).
func BenchmarkKnapsackAllocators(b *testing.B) {
	items := make([]core.KnapsackItem, 50)
	for i := range items {
		items[i] = core.KnapsackItem{Content: i, Weight: 1 + float64(i%17), Value: float64((i*31)%97) + 1}
	}
	b.Run("fractional", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.AllocateFractional(items, 200); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zero-one-dp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Allocate01(items, 200, 2000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

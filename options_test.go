package mfgcp

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestNewSolverConfigOptions checks the functional-option constructor:
// defaults preserved, options applied in order, invalid combinations rejected
// at construction.
func TestNewSolverConfigOptions(t *testing.T) {
	p := DefaultParams()
	rec := NewRecorder(nil)
	cfg, err := NewSolverConfig(p,
		WithScheme("explicit"),
		WithGrid(9, 41, 60),
		WithIteration(25, 5e-3),
		WithSharing(false),
		WithKernel(4, PrecisionFloat64),
		WithSurrogate("table.mfgt", 0.05),
		WithRecorder(rec),
	)
	if err != nil {
		t.Fatalf("NewSolverConfig: %v", err)
	}
	if cfg.Scheme != "explicit" || cfg.NH != 9 || cfg.NQ != 41 || cfg.Steps != 60 ||
		cfg.MaxIters != 25 || cfg.Tol != 5e-3 || cfg.ShareEnabled || cfg.Obs != Recorder(rec) {
		t.Errorf("options not applied: %+v", cfg)
	}
	if cfg.Kernel != (KernelConfig{Workers: 4, Precision: PrecisionFloat64}) {
		t.Errorf("kernel option not applied: %+v", cfg.Kernel)
	}
	if cfg.Surrogate != (SurrogateConfig{Path: "table.mfgt", MaxErrorBound: 0.05}) {
		t.Errorf("surrogate option not applied: %+v", cfg.Surrogate)
	}
	def := DefaultSolverConfig(p)
	if cfg.Damping != def.Damping || cfg.Params != p {
		t.Errorf("defaults not preserved: %+v", cfg)
	}

	if _, err := NewSolverConfig(p, WithScheme("upwind")); err == nil {
		t.Error("invalid scheme accepted")
	}
	if _, err := NewSolverConfig(p, WithKernel(0, "float16")); err == nil {
		t.Error("invalid kernel precision accepted")
	}
	if _, err := NewSolverConfig(p, WithScheme("explicit"), WithKernel(0, PrecisionFloat32)); err == nil {
		t.Error("float32 kernel with explicit scheme accepted")
	}
	if _, err := NewSolverConfig(p, WithGrid(1, 1, 1)); err == nil {
		t.Error("degenerate grid accepted")
	}
}

// TestNewMarketConfigOptions checks the market constructor, including the
// dual-purpose options shared with the solver side.
func TestNewMarketConfigOptions(t *testing.T) {
	p := DefaultParams()
	ladder := DefaultRecoveryEscalation()
	plan := FaultPlan{Seed: 3, EDPChurn: 0.1}
	cfg, err := NewMarketConfig(p, NewMFGCPPolicy(),
		WithEpochs(5),
		WithStepsPerEpoch(17),
		WithSeed(11),
		WithEqCache(32),
		WithScheme("explicit"),
		WithGrid(7, 21, 30),
		WithKernel(2, ""),
		WithSurrogate("table.mfgt", 0),
		WithEscalation(ladder),
		WithFaultPlan(plan),
		WithCheckpoint(MarketCheckpointConfig{Dir: t.TempDir(), Every: 2}),
		WithRequesters(RequesterConfig{J: 40, Speed: 5, RequestsPerRequester: 2}),
		WithExactInterference(true),
	)
	if err != nil {
		t.Fatalf("NewMarketConfig: %v", err)
	}
	if cfg.Epochs != 5 || cfg.StepsPerEpoch != 17 || cfg.Seed != 11 || cfg.EqCacheSize != 32 {
		t.Errorf("market options not applied: %+v", cfg)
	}
	if cfg.Solver.Scheme != "explicit" || cfg.Solver.NH != 7 || cfg.Solver.NQ != 21 {
		t.Errorf("dual options did not reach the nested solver: %+v", cfg.Solver)
	}
	if cfg.Solver.Kernel.Workers != 2 {
		t.Errorf("kernel option did not reach the nested solver: %+v", cfg.Solver.Kernel)
	}
	if cfg.Solver.Surrogate.Path != "table.mfgt" {
		t.Errorf("surrogate option did not reach the nested solver: %+v", cfg.Solver.Surrogate)
	}
	if cfg.Recovery == nil || *cfg.Recovery != ladder {
		t.Errorf("escalation not installed: %+v", cfg.Recovery)
	}
	if cfg.Faults == nil || *cfg.Faults != plan {
		t.Errorf("fault plan not installed: %+v", cfg.Faults)
	}
	if cfg.Requesters.J != 40 || !cfg.ExactInterference {
		t.Errorf("requester options not applied: %+v", cfg)
	}

	if _, err := NewMarketConfig(p, NewRRPolicy(), WithEpochs(0)); err == nil {
		t.Error("zero epochs accepted")
	}
	if _, err := NewMarketConfig(p, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

// TestSolveEquilibriumContext checks the context-first solve: a cancelled
// context aborts promptly with the context error, and the background wrapper
// still solves.
func TestSolveEquilibriumContext(t *testing.T) {
	p := DefaultParams()
	cfg, err := NewSolverConfig(p, WithGrid(5, 11, 12))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Requests: 10, Pop: 0.3, Timeliness: 2}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveEquilibriumContext(ctx, cfg, w); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled solve: got %v, want context.Canceled", err)
	}

	eq, err := SolveEquilibrium(cfg, w)
	if err != nil {
		t.Fatalf("SolveEquilibrium: %v", err)
	}
	if !eq.Converged {
		t.Errorf("default solve did not converge: %d iterations", eq.Iterations)
	}
}

// TestRunExperimentContext checks that the context argument reaches the
// experiment and that an explicit opt.Context wins.
func TestRunExperimentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := ExperimentOptions{Seed: 1, Quick: true}
	if _, err := RunExperimentContext(ctx, "table2", opt); err == nil {
		t.Error("cancelled experiment context not honoured")
	} else if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "interrupt") {
		t.Errorf("cancelled experiment: unexpected error %v", err)
	}
}

// TestPolicyByName locks the public name→policy mapping.
func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"mfg-cp": "MFG-CP", "MFG": "MFG", "rr": "RR", "mpc": "MPC", "udcs": "UDCS",
	} {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
			continue
		}
		if pol.Name() != want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", name, pol.Name(), want)
		}
	}
	if _, err := PolicyByName("lfu"); err == nil {
		t.Error("unknown policy accepted")
	}
}

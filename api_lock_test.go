package mfgcp

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "regenerate testdata/api.txt from the current public surface")

// TestPublicAPILock pins the package's exported surface to testdata/api.txt.
// Any addition, removal or signature change fails this test until the golden
// file is regenerated with
//
//	go test -run TestPublicAPILock -update-api .
//
// making API changes deliberate and reviewable: the golden diff shows exactly
// what the PR adds to or removes from the stable tier (see DESIGN.md §10).
func TestPublicAPILock(t *testing.T) {
	got := renderPublicAPI(t)
	golden := filepath.Join("testdata", "api.txt")
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d declarations)", golden, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with -update-api)", golden, err)
	}
	if got != string(want) {
		t.Errorf("public API surface changed; if intentional, regenerate with\n\n"+
			"\tgo test -run TestPublicAPILock -update-api .\n\n%s",
			unifiedDiffish(string(want), got))
	}
}

// renderPublicAPI parses every non-test file of the package and renders each
// exported top-level declaration (docs and function bodies stripped), sorted.
func renderPublicAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	var decls []string
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, d := range f.Decls {
			decls = append(decls, renderDecl(t, fset, d)...)
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n") + "\n"
}

// renderDecl returns the exported declarations of d as canonical one-per-line
// strings, empty when d exports nothing.
func renderDecl(t *testing.T, fset *token.FileSet, d ast.Decl) []string {
	t.Helper()
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatalf("print declaration: %v", err)
		}
		// Collapse whitespace so gofmt churn cannot fail the lock.
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	switch d := d.(type) {
	case *ast.FuncDecl:
		if d.Recv != nil || !d.Name.IsExported() {
			return nil // methods live on internal types; aliases carry them
		}
		d.Body = nil
		d.Doc = nil
		return []string{render(d)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					s.Doc, s.Comment = nil, nil
					out = append(out, "type "+render(s))
				}
			case *ast.ValueSpec:
				exported := false
				for _, n := range s.Names {
					if n.IsExported() {
						exported = true
					}
				}
				if exported {
					s.Doc, s.Comment = nil, nil
					out = append(out, d.Tok.String()+" "+render(s))
				}
			}
		}
		return out
	}
	return nil
}

// unifiedDiffish renders a minimal line diff (additions/removals only) — good
// enough to see what changed without a diff dependency.
func unifiedDiffish(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}

// Command benchdiff compares `go test -bench` output against the stored
// baseline (BENCH_baseline.json), flagging ns/op regressions beyond a
// relative threshold.
//
// Usage:
//
//	go test -run xxx -bench . ./... | benchdiff -baseline BENCH_baseline.json
//	benchdiff -baseline BENCH_baseline.json bench-output.txt
//	go test -run xxx -bench . . | benchdiff -baseline BENCH_baseline.json -update
//
// benchdiff exits 1 when a benchmark slowed by more than -threshold (or
// vanished from the run). The CI bench job runs it with continue-on-error:
// cross-host timing variance makes the comparison advisory, not a gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	threshold := fs.Float64("threshold", 0.15, "relative ns/op slowdown that flags a regression")
	update := fs.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	note := fs.String("note", "", "provenance note stored with -update")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %g", *threshold)
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	current, err := benchcmp.Parse(in)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	if *update {
		if err := benchcmp.NewBaseline(*note, current).Write(*baselinePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "baseline %s updated with %d benchmarks\n", *baselinePath, len(current))
		return nil
	}

	base, err := benchcmp.LoadBaseline(*baselinePath)
	if err != nil {
		return err
	}
	deltas := benchcmp.Compare(base, current, *threshold)
	benchcmp.Format(stdout, deltas)
	if regs := benchcmp.Regressions(deltas); len(regs) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% (advisory: re-run or compare on the baseline host class)",
			len(regs), 100**threshold)
	}
	fmt.Fprintln(stdout, "no regressions beyond threshold")
	return nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `BenchmarkHJBSolve-8     100     120000 ns/op
BenchmarkFPKSolve-8     200      60000 ns/op
PASS
`

func TestBenchdiffUpdateThenCompare(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")

	var out bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-update", "-note", "test host"},
		strings.NewReader(benchOutput), &out); err != nil {
		t.Fatalf("update: %v", err)
	}

	// Identical numbers: no regression.
	out.Reset()
	if err := run([]string{"-baseline", baseline},
		strings.NewReader(benchOutput), &out); err != nil {
		t.Fatalf("self-compare flagged a regression: %v\n%s", err, out.String())
	}

	// 50% slower HJB solve: flagged, non-zero exit.
	slow := strings.Replace(benchOutput, "120000", "180000", 1)
	out.Reset()
	if err := run([]string{"-baseline", baseline}, strings.NewReader(slow), &out); err == nil {
		t.Fatalf("50%% slowdown not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("table does not mark the regression:\n%s", out.String())
	}

	// A raised threshold tolerates it.
	out.Reset()
	if err := run([]string{"-baseline", baseline, "-threshold", "0.6"},
		strings.NewReader(slow), &out); err != nil {
		t.Fatalf("60%% threshold still flagged: %v", err)
	}
}

func TestBenchdiffInputErrors(t *testing.T) {
	if err := run([]string{"-baseline", "/does/not/exist.json"},
		strings.NewReader(benchOutput), &bytes.Buffer{}); err == nil {
		t.Error("missing baseline accepted")
	}
	baseline := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(baseline, []byte(`{"benchmarks":{"BenchmarkX":{"name":"BenchmarkX","ns_per_op":1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", baseline},
		strings.NewReader("no benchmarks"), &bytes.Buffer{}); err == nil {
		t.Error("empty input accepted")
	}
	if err := run([]string{"-threshold", "-1"},
		strings.NewReader(benchOutput), &bytes.Buffer{}); err == nil {
		t.Error("negative threshold accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
}

func TestRunMissingArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments should error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"not-an-experiment", "-quick"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"fig3", "-quick", "-csv", dir}); err != nil {
		t.Fatalf("fig3: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig3_*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Error("no CSV artefacts written")
	}
	for _, m := range matches {
		info, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", m)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"fig3", "-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestSolveSubcommand(t *testing.T) {
	dir := t.TempDir()
	save := filepath.Join(dir, "eq.gob")
	args := []string{"solve", "-nh", "5", "-nq", "21", "-steps", "30",
		"-csv", dir, "-save", save}
	if err := run(args); err != nil {
		t.Fatalf("solve: %v", err)
	}
	for _, name := range []string{"solve_strategy.csv", "solve_density.csv", "solve_market.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	if info, err := os.Stat(save); err != nil || info.Size() == 0 {
		t.Errorf("equilibrium archive missing or empty: %v", err)
	}
}

func TestSolveSubcommandOverrides(t *testing.T) {
	if err := run([]string{"solve", "-nh", "5", "-nq", "21", "-steps", "30",
		"-no-share", "-eta1", "0.003", "-qk", "80", "-init-mean", "0.6"}); err != nil {
		t.Fatalf("solve with overrides: %v", err)
	}
	if err := run([]string{"solve", "-bogus-flag"}); err == nil {
		t.Error("bad solve flag should error")
	}
}

func TestSolveSubcommandKernelFlags(t *testing.T) {
	if err := run([]string{"solve", "-nh", "5", "-nq", "21", "-steps", "30",
		"-kernel-workers", "2", "-precision", "float32"}); err != nil {
		t.Fatalf("solve with kernel flags: %v", err)
	}
	if err := run([]string{"solve", "-precision", "float16"}); err == nil {
		t.Error("unknown precision should error")
	}
	if err := run([]string{"solve", "-scheme", "explicit", "-precision", "float32"}); err == nil {
		t.Error("float32 with the explicit scheme should error")
	}
}

func TestMarketSubcommand(t *testing.T) {
	if err := run([]string{"market", "-policy", "rr", "-m", "8", "-k", "3",
		"-epochs", "1", "-steps", "8"}); err != nil {
		t.Fatalf("market: %v", err)
	}
	if err := run([]string{"market", "-policy", "mpc", "-m", "8", "-k", "3",
		"-epochs", "1", "-steps", "8", "-requesters", "20", "-exact-interference"}); err != nil {
		t.Fatalf("market with requesters: %v", err)
	}
	if err := run([]string{"market", "-policy", "nonsense"}); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run([]string{"market", "-bad-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManifestsMatchCommitted pins the committed deploy/ directory to the
// generator: the manifests are machine-written (the static ring bakes the
// fleet size into the StatefulSet args, the Services and the pinned
// autoscaler at once), so a hand edit or a generator change without a
// regeneration must fail loudly here, the same way the CI diff does.
func TestManifestsMatchCommitted(t *testing.T) {
	dir := t.TempDir()
	if err := manifestsCmd([]string{"-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, m := range renderManifests(3, "mfgcp:latest", "default", 8080) {
		generated, err := os.ReadFile(filepath.Join(dir, m.name))
		if err != nil {
			t.Fatal(err)
		}
		committed, err := os.ReadFile(filepath.Join("..", "..", "deploy", m.name))
		if err != nil {
			t.Fatalf("committed manifest missing (regenerate with `mfgcp manifests -out deploy`): %v", err)
		}
		if !bytes.Equal(generated, committed) {
			t.Errorf("deploy/%s differs from the generator output; regenerate with `mfgcp manifests -out deploy`", m.name)
		}
		if !bytes.Equal(generated, []byte(m.doc)) {
			t.Errorf("%s on disk differs from renderManifests output", m.name)
		}
	}
}

// TestManifestsShape pins the structural invariants the fleet depends on:
// per-ordinal DNS peers, $(POD_NAME) advertise expansion, both probe
// endpoints, a headless governing service that publishes not-ready
// addresses, and an autoscaler pinned at the generated fleet size.
func TestManifestsShape(t *testing.T) {
	docs := renderManifests(5, "registry.example/mfgcp:v2", "edge", 9090)
	byName := make(map[string]string, len(docs))
	for _, m := range docs {
		byName[m.name] = m.doc
	}

	ss := byName["statefulset.yaml"]
	for _, want := range []string{
		"replicas: 5",
		"image: registry.example/mfgcp:v2",
		"namespace: edge",
		"-addr=0.0.0.0:9090",
		"-advertise=http://$(POD_NAME).mfgcp:9090",
		"-peers=" + strings.Join(fleetPeers(5, 9090), ","),
		"path: /readyz",
		"path: /healthz",
	} {
		if !strings.Contains(ss, want) {
			t.Errorf("statefulset.yaml missing %q", want)
		}
	}
	if peers := fleetPeers(5, 9090); peers[0] != "http://mfgcp-0.mfgcp:9090" || peers[4] != "http://mfgcp-4.mfgcp:9090" {
		t.Errorf("fleetPeers(5, 9090) = %v, want per-ordinal headless DNS names", peers)
	}

	svc := byName["service.yaml"]
	for _, want := range []string{"clusterIP: None", "publishNotReadyAddresses: true", "name: mfgcp-client"} {
		if !strings.Contains(svc, want) {
			t.Errorf("service.yaml missing %q", want)
		}
	}

	hpa := byName["hpa.yaml"]
	for _, want := range []string{"minReplicas: 5", "maxReplicas: 5", "kind: StatefulSet"} {
		if !strings.Contains(hpa, want) {
			t.Errorf("hpa.yaml missing %q (bounds must pin the static ring size)", want)
		}
	}
}

// TestManifestsRejectsBadReplicas pins the argument guard.
func TestManifestsRejectsBadReplicas(t *testing.T) {
	if err := manifestsCmd([]string{"-out", t.TempDir(), "-replicas", "0"}); err == nil {
		t.Fatal("manifests accepted -replicas 0")
	}
}

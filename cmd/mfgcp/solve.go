package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	mfgcp "repro"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/surrogate"
)

// solveFile is the -config document of `mfgcp solve`: the same shape as the
// serving daemon's POST /v1/solve body, with sparse Params/Solver/Workload
// sections merged onto the defaults.
type solveFile struct {
	Params   json.RawMessage `json:",omitempty"`
	Solver   json.RawMessage `json:",omitempty"`
	Workload json.RawMessage `json:",omitempty"`
}

// solveCmd implements `mfgcp solve`: one custom equilibrium solve with
// parameter overrides from flags, a text summary, optional CSV dumps of the
// strategy surface / density marginal / price path, and an optional gob
// archive for reuse via the warm-start machinery.
//
// Configuration precedence: the experiment defaults, then -config FILE (a
// JSON document shaped like the daemon's /v1/solve request), then every flag
// set explicitly on the command line.
func solveCmd(args []string) (retErr error) {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	configPath := fs.String("config", "", "JSON solve configuration merged over the defaults (Params/Solver/Workload)")
	requests := fs.Float64("requests", 10, "request load |I_k| per epoch")
	pop := fs.Float64("pop", 0.3, "content popularity Π_k in [0,1]")
	timeliness := fs.Float64("timeliness", 2, "content timeliness L_k")
	qk := fs.Float64("qk", 0, "content size Qk in MB (0 keeps the default)")
	eta1 := fs.Float64("eta1", 0, "supply→price conversion η1 (0 keeps the default)")
	eta2 := fs.Float64("eta2", 0, "delay→cost conversion η2 (0 keeps the default)")
	initMean := fs.Float64("init-mean", 0, "initial λ(0) mean fraction in (0,1] (0 keeps the default)")
	nh := fs.Int("nh", 0, "h-grid nodes (0 keeps the default)")
	nq := fs.Int("nq", 0, "q-grid nodes (0 keeps the default)")
	steps := fs.Int("steps", 0, "time steps (0 keeps the default)")
	noShare := fs.Bool("no-share", false, "solve the MFG baseline without peer sharing")
	scheme := fs.String("scheme", "", "PDE time integrator: implicit (default) or explicit")
	kernelWorkers := fs.Int("kernel-workers", 0, "parallel PDE line-sweep workers (0 or 1 is serial; results are identical at any count)")
	precision := fs.String("precision", "", "PDE kernel precision: float64 (default) or float32 (fast path, implicit scheme only)")
	surrogatePath := fs.String("surrogate", "", "precomputed surrogate table (see mfgcp precompute); in-region workloads answer by interpolation")
	surrogateMaxBound := fs.Float64("surrogate-max-bound", 0, "reject surrogate answers whose declared error bound exceeds this (0 = any in-region bound)")
	csvDir := fs.String("csv", "", "write strategy/density/price CSVs into this directory")
	saveTo := fs.String("save", "", "write the solved equilibrium archive (gob) to this file")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := tel.finish(); ferr != nil && retErr == nil {
			retErr = fmt.Errorf("telemetry: %w", ferr)
		}
	}()

	set := setFlags(fs)
	var file solveFile
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
	}

	params := mfgcp.DefaultParams()
	if len(file.Params) > 0 {
		var err error
		if params, err = engine.DecodeParams(file.Params, params); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
	}
	if *qk > 0 {
		params.Qk = *qk
		params.SigmaQ = 0.1 * *qk
	}
	if *eta1 > 0 {
		params.Eta1 = *eta1
	}
	if *eta2 > 0 {
		params.Eta2 = *eta2
	}
	if *initMean > 0 {
		params.InitMeanFrac = *initMean
	}

	cfg := mfgcp.DefaultSolverConfig(params)
	if len(file.Solver) > 0 {
		var err error
		if cfg, err = engine.DecodeConfig(file.Solver, cfg); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
		cfg.Params = params // explicit flag overrides win over the file
	}
	nhv, nqv, stepsv := cfg.NH, cfg.NQ, cfg.Steps
	if *nh > 0 {
		nhv = *nh
	}
	if *nq > 0 {
		nqv = *nq
	}
	if *steps > 0 {
		stepsv = *steps
	}
	opts := []mfgcp.SolveOption{mfgcp.WithGrid(nhv, nqv, stepsv), mfgcp.WithRecorder(tel.Rec)}
	if *configPath == "" || set["no-share"] {
		opts = append(opts, mfgcp.WithSharing(!*noShare))
	}
	if *scheme != "" {
		opts = append(opts, mfgcp.WithScheme(*scheme))
	}
	if set["kernel-workers"] || set["precision"] {
		kc := cfg.Kernel
		if set["kernel-workers"] {
			kc.Workers = *kernelWorkers
		}
		if set["precision"] {
			kc.Precision = *precision
		}
		opts = append(opts, mfgcp.WithKernel(kc.Workers, kc.Precision))
	}
	if set["surrogate"] || set["surrogate-max-bound"] {
		sc := cfg.Surrogate
		if set["surrogate"] {
			sc.Path = *surrogatePath
		}
		if set["surrogate-max-bound"] {
			sc.MaxErrorBound = *surrogateMaxBound
		}
		opts = append(opts, mfgcp.WithSurrogate(sc.Path, sc.MaxErrorBound))
	}
	cfg, err = mfgcp.ApplySolveOptions(cfg, opts...)
	if err != nil {
		return err
	}

	w := mfgcp.Workload{Requests: *requests, Pop: *pop, Timeliness: *timeliness}
	if len(file.Workload) > 0 {
		if w, err = engine.DecodeWorkload(file.Workload); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
		if set["requests"] {
			w.Requests = *requests
		}
		if set["pop"] {
			w.Pop = *pop
		}
		if set["timeliness"] {
			w.Timeliness = *timeliness
		}
	}

	if cfg.Surrogate.Path != "" {
		tab, err := surrogate.Load(cfg.Surrogate.Path)
		if err != nil {
			return err
		}
		if sum, ok := tab.Lookup(cfg, w); ok {
			if *csvDir != "" || *saveTo != "" {
				fmt.Fprintln(os.Stderr, "mfgcp: warning: -csv/-save need the full equilibrium; solving exactly despite the surrogate hit")
			} else {
				printSurrogateSummary(sum)
				return tel.summary("solve")
			}
		} else {
			fmt.Fprintln(os.Stderr, "mfgcp: workload outside the surrogate trust region; solving exactly")
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	eq, err := mfgcp.SolveEquilibriumContext(ctx, cfg, w)
	if err != nil {
		if eq == nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mfgcp: warning: %v (reporting the partial equilibrium)\n", err)
	}
	fmt.Printf("equilibrium: %d iterations, converged=%v, %.2fs\n",
		eq.Iterations, eq.Converged, time.Since(start).Seconds())
	for _, t := range []float64{0, 0.25, 0.5, 0.75, 1} {
		s := eq.SnapshotAt(t * params.Horizon)
		fmt.Printf("  t=%.2f  price=%.3f  E[x*]=%.3f  q̄=%.1fMB  Φ̄²=%.2f\n",
			s.T, s.Price, s.MeanControl, s.QBar, s.ShareBenefit)
	}

	if *csvDir != "" {
		if err := writeSolveCSVs(eq, params, *csvDir); err != nil {
			return err
		}
		fmt.Printf("[CSV artefacts written to %s]\n", *csvDir)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := eq.WriteTo(f)
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("[equilibrium archive (%d bytes) written to %s]\n", n, *saveTo)
	}
	return tel.summary("solve")
}

// printSurrogateSummary renders an interpolated tier-0 answer in the same
// shape as the exact solve's summary, with the declared error bound up front.
func printSurrogateSummary(sum *surrogate.Summary) {
	fmt.Printf("surrogate: interpolated answer, error bound %.3g (converged=%v, ≤%d iterations at the cell corners)\n",
		sum.ErrorBound, sum.Converged, sum.Iterations)
	n := len(sum.Time)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		i := int(frac*float64(n-1) + 0.5)
		fmt.Printf("  t=%.2f  price=%.3f  E[x*]=%.3f  q̄=%.1fMB\n",
			sum.Time[i], sum.Price[i], sum.MeanControl[i], sum.MeanRemaining[i])
	}
}

func writeSolveCSVs(eq *mfgcp.Equilibrium, params mfgcp.Params, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	steps := eq.Time.Steps

	// Strategy surface x*(t, q) at the mean fading level.
	strat := &metrics.SeriesSet{Title: "strategy", XLabel: "q", YLabel: "x*"}
	qs := eq.Grid.Q.Nodes()
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		t := frac * params.Horizon
		vals := make([]float64, len(qs))
		for j, q := range qs {
			x, err := eq.HJB.ControlAt(t, params.ChMean, q)
			if err != nil {
				return err
			}
			vals[j] = x
		}
		s, err := metrics.NewSeries(fmt.Sprintf("t=%.2f", t), qs, vals)
		if err != nil {
			return err
		}
		strat.Add(s)
	}

	// Density marginal λ(t, q).
	dens := &metrics.SeriesSet{Title: "density", XLabel: "q", YLabel: "lambda"}
	for _, frac := range []float64{0, 0.5, 1} {
		n := int(frac * float64(steps))
		marg, err := eq.MarginalQ(n)
		if err != nil {
			return err
		}
		s, err := metrics.NewSeries(fmt.Sprintf("t=%.2f", eq.Time.At(n)), qs, marg)
		if err != nil {
			return err
		}
		dens.Add(s)
	}

	// Price and mean-control paths.
	econ := &metrics.SeriesSet{Title: "market", XLabel: "t", YLabel: "value"}
	times := make([]float64, steps+1)
	price := make([]float64, steps+1)
	meanX := make([]float64, steps+1)
	for n := 0; n <= steps; n++ {
		times[n] = eq.Time.At(n)
		price[n] = eq.Snapshots[n].Price
		meanX[n] = eq.Snapshots[n].MeanControl
	}
	ps, err := metrics.NewSeries("price", times, price)
	if err != nil {
		return err
	}
	xs, err := metrics.NewSeries("mean control", times, meanX)
	if err != nil {
		return err
	}
	econ.Add(ps)
	econ.Add(xs)

	// Algorithm 2 convergence: the sup-norm strategy residual after every
	// best-response iteration.
	conv := &metrics.SeriesSet{Title: "convergence", XLabel: "iteration", YLabel: "residual"}
	iters := make([]float64, len(eq.Residuals))
	for i := range iters {
		iters[i] = float64(i + 1)
	}
	rs, err := metrics.NewSeries("sup-norm residual", iters, eq.Residuals)
	if err != nil {
		return err
	}
	conv.Add(rs)

	for name, set := range map[string]*metrics.SeriesSet{
		"solve_strategy.csv":        strat,
		"solve_density.csv":         dens,
		"solve_market.csv":          econ,
		"convergence_residuals.csv": conv,
	} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := set.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

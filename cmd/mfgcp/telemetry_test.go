package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestTraceOutWritesSnapshot(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	if err := run([]string{"fig5", "-quick", "-trace-out", trace, "-log-level", "error"}); err != nil {
		t.Fatalf("fig5 with -trace-out: %v", err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("trace snapshot missing: %v", err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	for _, c := range []string{"experiments.runs", "core.solver.iterations", "pde.hjb.sweeps"} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %s = %g, want > 0 (got %+v)", c, snap.Counters[c], snap.Counters)
		}
	}
	if snap.Histograms["core.solver.residual"].Count == 0 {
		t.Error("per-iteration residual histogram missing from snapshot")
	}
}

func TestSolveWritesConvergenceResiduals(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"solve", "-nh", "5", "-nq", "21", "-steps", "30", "-csv", dir}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "convergence_residuals.csv"))
	if err != nil {
		t.Fatalf("convergence_residuals.csv missing: %v", err)
	}
	rows, err := csv.NewReader(bytes.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatalf("bad CSV: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("want header plus at least one residual row, got %d rows", len(rows))
	}
	if rows[0][0] != "iteration" {
		t.Errorf("header = %v, want iteration-first", rows[0])
	}
}

func TestTraceOutUnwritablePathErrors(t *testing.T) {
	if err := run([]string{"fig3", "-quick", "-log-level", "error",
		"-trace-out", filepath.Join(t.TempDir(), "no-such-dir", "t.json")}); err == nil {
		t.Error("unwritable -trace-out must fail the run, not drop the snapshot silently")
	}
}

func TestObsFlagsParsing(t *testing.T) {
	if err := run([]string{"fig3", "-quick", "-log-level", "nonsense"}); err == nil {
		t.Error("invalid -log-level should error")
	}
	if err := run([]string{"solve", "-nh", "5", "-nq", "21", "-steps", "30",
		"-log-level", "warn"}); err != nil {
		t.Errorf("solve with -log-level: %v", err)
	}
}

func TestMetricsServer(t *testing.T) {
	if err := run([]string{"fig3", "-quick", "-metrics-addr", "127.0.0.1:0",
		"-log-level", "error"}); err != nil {
		t.Fatalf("fig3 with -metrics-addr: %v", err)
	}
}

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	mfgcp "repro"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/serve"
)

// serveCmd implements `mfgcp serve`: the long-running equilibrium-serving
// daemon. It answers POST /v1/solve (one equilibrium summary per workload)
// and POST /v1/policy/epoch (batch per-content strategies via MFG-CP), plus
// GET /healthz, /readyz and — whenever telemetry is on — /metrics,
// /debug/vars and /debug/pprof on the same port.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting work,
// in-flight solves finish within -drain-timeout, and the process exits 0.
func serveCmd(args []string) (retErr error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "solver worker pool size (0 = one per CPU)")
	queue := fs.Int("queue", 64, "pending-solve queue depth (a full queue sheds with 429)")
	eqCache := fs.Int("eq-cache", 256, "equilibrium cache capacity (entries)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request solve deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "upper bound on request-supplied deadlines")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	slowThreshold := fs.Duration("slow", time.Second, "access-log slow-request threshold (warn level + stage breakdown)")
	cacheDir := fs.String("cache-dir", "", "persistent equilibrium cache directory (empty = memory-only; survives restarts and SIGKILL)")
	cacheDiskBytes := fs.Int64("cache-disk-bytes", 256<<20, "disk budget for -cache-dir; oldest segments compact away past it")
	breakerFailures := fs.Int("breaker-failures", 5, "consecutive solve failures that open the circuit breaker (-1 disables)")
	breakerOpen := fs.Duration("breaker-open", 5*time.Second, "how long an open breaker fails fast (503) before a half-open probe")
	retryBudget := fs.Float64("retry-budget", 0.1, "retry-budget refill per fresh solve (X-Mfgcp-Retry requests draw from it; -1 disables)")
	configPath := fs.String("config", "", "JSON defaults for Params/Solver (same shape as a /v1/solve body)")
	surrogatePath := fs.String("surrogate", "", "precomputed surrogate table (see mfgcp precompute); in-region solves answer from it as tier 0")
	surrogateMaxBound := fs.Float64("surrogate-max-bound", 0, "reject surrogate answers whose declared error bound exceeds this (0 = any in-region bound)")
	kernelWorkers := fs.Int("kernel-workers", 0, "parallel PDE line-sweep workers per solve (0 or 1 is serial)")
	precision := fs.String("precision", "", "PDE kernel precision: float64 (default) or float32 (fast path, implicit scheme only)")
	peers := fs.String("peers", "", "comma-separated fleet member base URLs (including this replica); enables consistent-hash routing and peer cache-fill")
	advertise := fs.String("advertise", "", "this replica's own base URL as it appears in -peers (default http://<addr>)")
	peerTimeout := fs.Duration("peer-timeout", 10*time.Second, "peer cache-fill round-trip bound; an expired fill degrades to a local solve")
	peerProbe := fs.Duration("peer-probe", time.Second, "peer /readyz health-probe interval")
	ringVnodes := fs.Int("ring-vnodes", 0, "virtual nodes per ring member (0 = default 128)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := tel.finish(); ferr != nil && retErr == nil {
			retErr = fmt.Errorf("telemetry: %w", ferr)
		}
	}()

	params := mfgcp.DefaultParams()
	solver := mfgcp.DefaultSolverConfig(params)
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		var file solveFile
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
		if len(file.Params) > 0 {
			if params, err = engine.DecodeParams(file.Params, params); err != nil {
				return fmt.Errorf("-config %s: %w", *configPath, err)
			}
			solver.Params = params
		}
		if len(file.Solver) > 0 {
			if solver, err = engine.DecodeConfig(file.Solver, solver); err != nil {
				return fmt.Errorf("-config %s: %w", *configPath, err)
			}
			params = solver.Params
		}
		if len(file.Workload) > 0 {
			return fmt.Errorf("-config %s: a Workload section is per-request; the daemon config takes Params and Solver only", *configPath)
		}
	}
	// Kernel flags win over the -config file; the daemon's solves then run
	// with this kernel by default (per-request Solver sections may still
	// override it).
	set := setFlags(fs)
	if set["kernel-workers"] {
		solver.Kernel.Workers = *kernelWorkers
	}
	if set["precision"] {
		solver.Kernel.Precision = *precision
	}
	if set["surrogate"] {
		solver.Surrogate.Path = *surrogatePath
	}
	if set["surrogate-max-bound"] {
		solver.Surrogate.MaxErrorBound = *surrogateMaxBound
	}
	if solver, err = mfgcp.ApplySolveOptions(solver); err != nil {
		return err
	}

	// Fleet membership: -peers lists every replica (self included); -advertise
	// names this one. A listen address like ":8080" has no routable host, so
	// the default advertised URL substitutes loopback — fine for local fleets;
	// Kubernetes pods pass their stable DNS name explicitly.
	var ccfg cluster.Config
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ccfg.Peers = append(ccfg.Peers, p)
			}
		}
		self := *advertise
		if self == "" {
			if strings.HasPrefix(*addr, ":") {
				self = "http://127.0.0.1" + *addr
			} else {
				self = "http://" + *addr
			}
		}
		ccfg.Self = self
		ccfg.PeerTimeout = *peerTimeout
		ccfg.ProbeInterval = *peerProbe
		ccfg.VirtualNodes = *ringVnodes
	}

	// The daemon always runs a live registry — the serve.* metrics are part
	// of its API surface — reusing the telemetry one when the obs flags
	// already built it.
	reg := tel.reg
	if reg == nil {
		reg = obs.NewRegistry(nil)
	}
	// The daemon exports Go runtime health (goroutines, heap, GC pauses)
	// alongside its own metrics; batch runs keep snapshots deterministic.
	reg.SetRuntimeMetrics(true)

	srv, err := serve.New(serve.Config{
		Addr:                 *addr,
		Workers:              *workers,
		QueueDepth:           *queue,
		CacheSize:            *eqCache,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		DrainTimeout:         *drainTimeout,
		SlowRequestThreshold: *slowThreshold,
		AccessLog:            tel.logger,
		Params:               params,
		Solver:               solver,
		Obs:                  reg,
		Registry:             reg,
		CacheDir:             *cacheDir,
		CacheDiskBytes:       *cacheDiskBytes,
		Breaker:              serve.BreakerConfig{Failures: *breakerFailures, OpenFor: *breakerOpen},
		RetryBudgetRatio:     *retryBudget,
		Cluster:              ccfg,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "mfgcp serve: listening on %s (workers=%d queue=%d cache=%d)\n",
		*addr, nWorkers, *queue, *eqCache)
	if solver.Surrogate.Path != "" {
		fmt.Fprintf(os.Stderr, "mfgcp serve: tier-0 surrogate table %s\n", solver.Surrogate.Path)
	}
	if ccfg.Enabled() {
		fmt.Fprintf(os.Stderr, "mfgcp serve: fleet member %s of %d peers\n", ccfg.Self, len(ccfg.Peers))
	}
	if err := srv.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "mfgcp serve: drained cleanly")
	return tel.summary("serve")
}

package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// clusterSolve posts one solve body and fails the test on anything but a 200.
func clusterSolve(t *testing.T, base, body string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("solve against %s: %v", base, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve against %s: status %d body %s", base, resp.StatusCode, data)
	}
	return data
}

// TestClusterKillReplicaChaos is the fleet availability acceptance end to end,
// against real processes:
//
//  1. a 3-replica fleet (static -peers ring) serves a hot key; the ring owner
//     of that key is identified by which replica's executed-solve counter
//     moved, and a second, cold key held EXCLUSIVELY by that owner is found
//     the same way;
//  2. the owner dies by SIGKILL mid-load while `loadgen` sprays the hot key
//     across all three members with response validation on — no corrupt 200s
//     are tolerated during the failure window;
//  3. the survivors must mark the dead peer down (cluster_peers_healthy
//     drops to 2), take over ownership of its keys, and re-solve the cold
//     key byte-identically to its pre-kill answer — the solver is
//     deterministic, so failover must not change what clients see;
//  4. both survivors still drain cleanly on SIGTERM.
func TestClusterKillReplicaChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns real daemon processes")
	}
	cfgPath := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(cfgPath, []byte(`{"Solver": {"NH": 7, "NQ": 15, "Steps": 24}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	const n = 3
	addrs := make([]string, n)
	bases := make([]string, n)
	for i := range addrs {
		addrs[i] = freePort(t)
		bases[i] = "http://" + addrs[i]
	}
	peersFlag := strings.Join(bases, ",")
	daemons := make([]*exec.Cmd, n)
	for i := range daemons {
		daemons[i] = startServeProc(t,
			"-addr", addrs[i], "-advertise", bases[i], "-peers", peersFlag,
			"-peer-probe", "100ms", "-config", cfgPath)
	}
	for _, base := range bases {
		waitReady(t, base)
	}

	// The hot key: posted to replica 0, solved exactly once fleet-wide by its
	// ring owner (replica 0 either owned it or peer-filled from the owner).
	hotBody := `{"Workload": {"Requests": 12, "Pop": 0.35, "Timeliness": 3}}`
	clusterSolve(t, bases[0], hotBody)
	ownerIdx := -1
	for i, base := range bases {
		if scrapeCounter(t, base, "serve_solve_executed_total") == 1 {
			if ownerIdx != -1 {
				t.Fatalf("replicas %d and %d both executed the hot solve, want exactly one cold solve fleet-wide", ownerIdx, i)
			}
			ownerIdx = i
		}
	}
	if ownerIdx == -1 {
		t.Fatal("no replica executed the hot solve")
	}

	// A cold key the kill target holds exclusively: candidates go straight to
	// the owner, and the one whose solve ran on the owner alone (no forward)
	// is ring-owned by it — after the kill, no other replica has it cached,
	// so serving it again forces a failover re-solve.
	execBase := make([]float64, n)
	for i, base := range bases {
		execBase[i] = scrapeCounter(t, base, "serve_solve_executed_total")
	}
	var coldBody string
	var coldWant []byte
	for req := 40; req < 80 && coldBody == ""; req++ {
		cand := fmt.Sprintf(`{"Workload": {"Requests": %d, "Pop": 0.62, "Timeliness": 2}}`, req)
		data := clusterSolve(t, bases[ownerIdx], cand)
		solo := true
		for i, base := range bases {
			v := scrapeCounter(t, base, "serve_solve_executed_total")
			if i == ownerIdx {
				solo = solo && v == execBase[i]+1
			} else {
				solo = solo && v == execBase[i]
			}
			execBase[i] = v
		}
		if solo {
			coldBody = cand
			coldWant = solveBodyWithoutSource(t, data)
		}
	}
	if coldBody == "" {
		t.Fatal("no candidate workload is ring-owned by the kill target")
	}

	// Spray the hot key across the whole fleet and SIGKILL its owner inside
	// the window. Validation gates the one unforgivable failure: a 200 whose
	// body is not a coherent equilibrium. Errors and timeouts are expected —
	// a third of the targets is a corpse for most of the window.
	repCh := make(chan *loadgen.Report, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := loadgen.Run(t.Context(), loadgen.Config{
			Targets:       bases,
			RPS:           120,
			Duration:      4 * time.Second,
			Timeout:       5 * time.Second,
			Bodies:        [][]byte{[]byte(hotBody)},
			Validate:      true,
			ScrapeMetrics: true,
			SLO: loadgen.SLO{
				MaxErrorRate:   loadgen.Unchecked,
				MaxShedRate:    loadgen.Unchecked,
				MaxTimeoutRate: loadgen.Unchecked,
			},
		})
		repCh <- rep
		errCh <- err
	}()
	time.Sleep(800 * time.Millisecond)
	if err := daemons[ownerIdx].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	werr := daemons[ownerIdx].Wait()
	var exit *exec.ExitError
	if !errors.As(werr, &exit) || exit.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("owner exit after SIGKILL: %v", werr)
	}
	rep := <-repCh
	if err := <-errCh; err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.Corrupt200s != 0 {
		t.Errorf("corrupt 200s during the kill window = %d, want 0", rep.Corrupt200s)
	}
	if rep.Succeeded == 0 {
		t.Error("no request succeeded during the kill window; the survivors should have kept serving")
	}
	// The report still aggregates the scrapeable members: the corpse is
	// skipped, not fatal, and the fleet view shows peer traffic happened.
	if rep.Server == nil {
		t.Fatal("multi-target scrape produced no fleet aggregate")
	}
	if rep.Server.PeerHits == 0 {
		t.Error("fleet-wide cluster.peer_hit delta is zero; non-owners should have peer-filled the hot key")
	}

	var survivors []int
	for i := range bases {
		if i != ownerIdx {
			survivors = append(survivors, i)
		}
	}

	// Failover: each survivor's prober must mark the corpse down.
	deadline := time.Now().Add(15 * time.Second)
	for _, i := range survivors {
		for scrapeCounter(t, bases[i], "cluster_peers_healthy") != 2 {
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never marked the killed owner down", bases[i])
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// The cold key's owner is gone and nobody else holds its answer: serving
	// it now walks the ring past the dead member and re-solves. The solver is
	// deterministic, so the re-solved body must match the pre-kill answer
	// bit for bit (provenance aside).
	for _, i := range survivors {
		data := clusterSolve(t, bases[i], coldBody)
		if got := solveBodyWithoutSource(t, data); !bytes.Equal(got, coldWant) {
			t.Errorf("replica %s: failover re-solve differs from the pre-kill equilibrium:\n%s\nvs\n%s",
				bases[i], got, coldWant)
		}
	}
	var peerHits float64
	for _, i := range survivors {
		peerHits += scrapeCounter(t, bases[i], "cluster_peer_hit_total")
	}
	if peerHits == 0 {
		t.Error("survivors report zero cluster_peer_hit_total; the fleet never peer-filled")
	}

	// Survivors still drain cleanly.
	for _, i := range survivors {
		if err := daemons[i].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := daemons[i].Wait(); err != nil {
			t.Fatalf("survivor %s exit after SIGTERM: %v, want 0", bases[i], err)
		}
	}
}

package main

import (
	"errors"
	"io/fs"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestMarketSIGINTLeavesValidCheckpoint is the CLI-level resilience
// acceptance: a SIGINT delivered mid-run makes `mfgcp market` return nil (so
// the process exits 0) with a valid, resumable snapshot on disk.
func TestMarketSIGINTLeavesValidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	args := []string{"market", "-policy", "mfg-cp", "-m", "10", "-k", "3",
		"-epochs", "300", "-steps", "10", "-checkpoint", dir}

	// Deliver SIGINT to the process once the first snapshot exists, so the
	// interruption is guaranteed to land mid-run with state on disk.
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			if _, err := sim.LoadCheckpoint(dir); err == nil {
				syscall.Kill(syscall.Getpid(), syscall.SIGINT)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	err := run(args)
	<-done
	if err != nil {
		t.Fatalf("interrupted market run returned %v, want nil (exit 0)", err)
	}

	ck, err := sim.LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("no valid checkpoint after SIGINT: %v", err)
	}
	if ck.NextEpoch < 1 || ck.NextEpoch >= 300 {
		t.Fatalf("checkpoint NextEpoch = %d, want mid-run", ck.NextEpoch)
	}

	// The snapshot must actually resume: finish a shortened tail by reusing
	// the same run shape. (Epochs is part of the snapshot identity, so the
	// resume must use the original epoch count — interrupt it again quickly
	// via -deadline to keep the test bounded.)
	if err := run([]string{"market", "-policy", "mfg-cp", "-m", "10", "-k", "3",
		"-epochs", "300", "-steps", "10", "-checkpoint", dir, "-resume",
		"-deadline", "2s"}); err != nil {
		t.Fatalf("resumed run with deadline returned %v, want nil", err)
	}
	ck2, err := sim.LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("no valid checkpoint after resumed run: %v", err)
	}
	if ck2.NextEpoch < ck.NextEpoch {
		t.Fatalf("resume went backwards: %d < %d", ck2.NextEpoch, ck.NextEpoch)
	}
}

// TestMarketDeadline checks -deadline alone interrupts cleanly without a
// checkpoint directory.
func TestMarketDeadline(t *testing.T) {
	if err := run([]string{"market", "-policy", "mfg-cp", "-m", "10", "-k", "3",
		"-epochs", "300", "-steps", "10", "-deadline", "1s"}); err != nil {
		t.Fatalf("deadline run returned %v, want nil", err)
	}
}

// TestMarketFaultPlanFlag exercises the -fault-plan spec end to end and the
// parser's error paths.
func TestMarketFaultPlanFlag(t *testing.T) {
	if err := run([]string{"market", "-policy", "mfg-cp", "-m", "8", "-k", "3",
		"-epochs", "2", "-steps", "8", "-eq-cache", "4", "-recover",
		"-fault-plan", "churn=0.3,drop=0.3,solver=0.5,seed=7"}); err != nil {
		t.Fatalf("fault-injected market run: %v", err)
	}
	for _, bad := range []string{"churn", "churn=x", "churn=1.5", "unknown=1", "seed=1.5"} {
		if _, err := parseFaultPlan(bad); err == nil {
			t.Errorf("parseFaultPlan(%q) accepted", bad)
		}
	}
	plan, err := parseFaultPlan(" churn=0.1, drop=0.2 ,solver=0.3,seed=9,budget=4 ")
	if err != nil {
		t.Fatalf("parseFaultPlan: %v", err)
	}
	if plan.EDPChurn != 0.1 || plan.DropShare != 0.2 || plan.SolverFail != 0.3 ||
		plan.Seed != 9 || plan.ErrorBudget != 4 {
		t.Fatalf("parseFaultPlan mis-parsed: %+v", plan)
	}
}

// TestMarketResumeRejectsMismatch checks the CLI surfaces a config/snapshot
// mismatch as an error mentioning the structured cause.
func TestMarketResumeRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"market", "-policy", "rr", "-m", "8", "-k", "3",
		"-epochs", "1", "-steps", "6", "-checkpoint", dir}); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	err := run([]string{"market", "-policy", "rr", "-m", "9", "-k", "3",
		"-epochs", "1", "-steps", "6", "-checkpoint", dir, "-resume"})
	if !errors.Is(err, sim.ErrCheckpointMismatch) {
		t.Fatalf("mismatched resume: got %v, want ErrCheckpointMismatch", err)
	}
	if err != nil && !strings.Contains(err.Error(), "population") {
		t.Errorf("mismatch error lacks detail: %v", err)
	}
	// A missing snapshot is not an error.
	if _, lerr := sim.LoadCheckpoint(t.TempDir()); !errors.Is(lerr, fs.ErrNotExist) {
		t.Fatalf("unexpected missing-snapshot error: %v", lerr)
	}
}

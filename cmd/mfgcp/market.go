package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	mfgcp "repro"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// marketCmd implements `mfgcp market`: one agent-based market run
// (Algorithm 1) with the chosen policy and population, reporting per-epoch
// statistics and the whole-run ledger.
func marketCmd(args []string) (retErr error) {
	fs := flag.NewFlagSet("market", flag.ContinueOnError)
	policyName := fs.String("policy", "mfg-cp", "caching policy: mfg-cp, mfg, rr, mpc, udcs")
	m := fs.Int("m", 60, "number of EDPs")
	k := fs.Int("k", 6, "number of contents")
	epochs := fs.Int("epochs", 2, "optimisation epochs")
	steps := fs.Int("steps", 30, "simulation steps per epoch")
	seed := fs.Int64("seed", 1, "RNG seed")
	requesters := fs.Int("requesters", 0, "requester population J (0 = homogeneous demand)")
	exact := fs.Bool("exact-interference", false, "pairwise SINR instead of the mean-field rate")
	scheme := fs.String("scheme", "", "PDE time integrator: implicit (default) or explicit")
	eqCache := fs.Int("eq-cache", 0, "equilibrium cache capacity across epochs (0 = off)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := tel.finish(); ferr != nil && retErr == nil {
			retErr = fmt.Errorf("telemetry: %w", ferr)
		}
	}()

	var pol mfgcp.Policy
	switch *policyName {
	case "mfg-cp":
		pol = mfgcp.NewMFGCPPolicy()
	case "mfg":
		pol = mfgcp.NewMFGPolicy()
	case "rr":
		pol = mfgcp.NewRRPolicy()
	case "mpc":
		pol = mfgcp.NewMPCPolicy()
	case "udcs":
		pol = mfgcp.NewUDCSPolicy()
	default:
		return fmt.Errorf("unknown policy %q (want mfg-cp, mfg, rr, mpc or udcs)", *policyName)
	}

	params := mfgcp.DefaultParams()
	params.M = *m
	params.K = *k
	cfg := mfgcp.DefaultMarketConfig(params, pol)
	cfg.Epochs = *epochs
	cfg.StepsPerEpoch = *steps
	cfg.Seed = *seed
	cfg.ExactInterference = *exact
	cfg.Solver.Scheme = *scheme
	cfg.EqCacheSize = *eqCache
	cfg.Obs = tel.Rec
	if *requesters > 0 {
		cfg.Requesters = sim.RequesterConfig{
			J:                    *requesters,
			Speed:                5,
			RequestsPerRequester: cfg.RequestsPerEDP * float64(*m) / float64(*requesters),
			TimelinessNoise:      0.5,
		}
	}

	start := time.Now()
	res, err := mfgcp.RunMarket(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d EDPs × %d contents × %d epochs in %.1fs (strategy time %v)\n",
		pol.Name(), params.M, params.K, cfg.Epochs, time.Since(start).Seconds(),
		res.StrategyTime.Round(time.Millisecond))

	tab := metrics.NewTable("per-epoch statistics (population means)",
		"epoch", "utility", "trading", "sharing", "staleness", "price", "x̄", "E[q]")
	for _, es := range res.Stats {
		if err := tab.AddRow(
			fmt.Sprintf("%d", es.Epoch),
			fmt.Sprintf("%.1f", es.MeanUtility),
			fmt.Sprintf("%.1f", es.MeanTrading),
			fmt.Sprintf("%.1f", es.MeanSharing),
			fmt.Sprintf("%.1f", es.MeanStale),
			fmt.Sprintf("%.3f", es.MeanPrice),
			fmt.Sprintf("%.3f", es.MeanRate),
			fmt.Sprintf("%.1f", es.MeanRemain),
		); err != nil {
			return err
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	l := res.MeanLedger()
	fmt.Printf("\nwhole-run ledger (population mean): utility %.1f = trading %.1f + sharing %.1f − placement %.1f − staleness %.1f − share cost %.1f\n",
		res.MeanUtility(), l.Trading, l.Sharing, l.Placement, l.Staleness, l.ShareCost)
	return tel.summary("market")
}

package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	mfgcp "repro"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// marketCmd implements `mfgcp market`: one agent-based market run
// (Algorithm 1) with the chosen policy and population, reporting per-epoch
// statistics and the whole-run ledger. The resilience flags (-checkpoint,
// -resume, -deadline, -fault-plan, -recover) make long runs interruptible,
// restartable and fault-tolerant; SIGINT/SIGTERM flush the partial results
// and exit cleanly, leaving a valid snapshot behind when -checkpoint is set.
//
// Configuration precedence: the experiment defaults, then -config FILE (a
// sparse JSON market configuration, see internal/sim's codec), then every
// flag set explicitly on the command line.
func marketCmd(args []string) (retErr error) {
	fs := flag.NewFlagSet("market", flag.ContinueOnError)
	configPath := fs.String("config", "", "JSON market configuration merged over the defaults")
	policyName := fs.String("policy", "mfg-cp", "caching policy: mfg-cp, mfg, rr, mpc, udcs")
	m := fs.Int("m", 60, "number of EDPs")
	k := fs.Int("k", 6, "number of contents")
	epochs := fs.Int("epochs", 2, "optimisation epochs")
	steps := fs.Int("steps", 30, "simulation steps per epoch")
	seed := fs.Int64("seed", 1, "RNG seed")
	requesters := fs.Int("requesters", 0, "requester population J (0 = homogeneous demand)")
	exact := fs.Bool("exact-interference", false, "pairwise SINR instead of the mean-field rate")
	scheme := fs.String("scheme", "", "PDE time integrator: implicit (default) or explicit")
	kernelWorkers := fs.Int("kernel-workers", 0, "parallel PDE line-sweep workers per equilibrium solve (0 or 1 is serial)")
	precision := fs.String("precision", "", "PDE kernel precision: float64 (default) or float32 (fast path, implicit scheme only)")
	eqCache := fs.Int("eq-cache", 0, "equilibrium cache capacity across epochs (0 = off)")
	checkpoint := fs.String("checkpoint", "", "directory for atomic epoch-boundary snapshots (empty = off)")
	ckEvery := fs.Int("checkpoint-every", 1, "snapshot after every N-th epoch")
	resume := fs.Bool("resume", false, "resume from the snapshot in -checkpoint (fresh start if none)")
	deadline := fs.Duration("deadline", 0, "abort the run after this duration, flushing partial results (0 = none)")
	faultSpec := fs.String("fault-plan", "", "seeded fault injection, e.g. churn=0.1,drop=0.2,solver=0.1,seed=7,budget=3")
	recovery := fs.Bool("recover", false, "retry diverged/non-converged solves under the escalation ladder")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := tel.finish(); ferr != nil && retErr == nil {
			retErr = fmt.Errorf("telemetry: %w", ferr)
		}
	}()

	set := setFlags(fs)
	// A flag wins over the config file only when set explicitly; without a
	// file, every flag (including its default) defines the run.
	flagWins := func(name string) bool { return *configPath == "" || set[name] }

	pol, err := mfgcp.PolicyByName(*policyName)
	if err != nil {
		return err
	}
	params := mfgcp.DefaultParams()
	params.M = *m
	params.K = *k
	cfg := mfgcp.DefaultMarketConfig(params, pol)
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		if cfg, err = sim.DecodeConfig(data, cfg); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
		if flagWins("policy") {
			cfg.Policy = pol
		}
		if flagWins("m") {
			cfg.Params.M = *m
		}
		if flagWins("k") {
			cfg.Params.K = *k
		}
	}

	var opts []mfgcp.MarketOption
	addOpt := func(name string, o mfgcp.MarketOption) {
		if flagWins(name) {
			opts = append(opts, o)
		}
	}
	addOpt("epochs", mfgcp.WithEpochs(*epochs))
	addOpt("steps", mfgcp.WithStepsPerEpoch(*steps))
	addOpt("seed", mfgcp.WithSeed(*seed))
	addOpt("exact-interference", mfgcp.WithExactInterference(*exact))
	addOpt("eq-cache", mfgcp.WithEqCache(*eqCache))
	if *scheme != "" {
		opts = append(opts, mfgcp.WithScheme(*scheme))
	}
	if set["kernel-workers"] || set["precision"] {
		kc := cfg.Solver.Kernel
		if set["kernel-workers"] {
			kc.Workers = *kernelWorkers
		}
		if set["precision"] {
			kc.Precision = *precision
		}
		opts = append(opts, mfgcp.WithKernel(kc.Workers, kc.Precision))
	}
	if *configPath == "" || set["checkpoint"] || set["checkpoint-every"] || set["resume"] {
		opts = append(opts, mfgcp.WithCheckpoint(mfgcp.MarketCheckpointConfig{
			Dir: *checkpoint, Every: *ckEvery, Resume: *resume,
		}))
	}
	if *faultSpec != "" {
		plan, err := parseFaultPlan(*faultSpec)
		if err != nil {
			return err
		}
		opts = append(opts, mfgcp.WithFaultPlan(*plan))
	}
	if *recovery {
		opts = append(opts, mfgcp.WithEscalation(mfgcp.DefaultRecoveryEscalation()))
	}
	if *requesters > 0 {
		opts = append(opts, mfgcp.WithRequesters(mfgcp.RequesterConfig{
			J:                    *requesters,
			Speed:                5,
			RequestsPerRequester: cfg.RequestsPerEDP * float64(cfg.Params.M) / float64(*requesters),
			TimelinessNoise:      0.5,
		}))
	}
	opts = append(opts, mfgcp.WithRecorder(tel.Rec))
	if cfg, err = mfgcp.ApplyMarketOptions(cfg, opts...); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	start := time.Now()
	res, err := mfgcp.RunMarketContext(ctx, cfg)
	interrupted := errors.Is(err, mfgcp.ErrMarketInterrupted)
	if err != nil && !interrupted {
		return err
	}
	if interrupted {
		fmt.Printf("interrupted (%v); partial results follow", err)
		if *checkpoint != "" {
			fmt.Printf(" — resume with -checkpoint %s -resume", *checkpoint)
		}
		fmt.Println()
	}
	fmt.Printf("%s: %d EDPs × %d contents × %d/%d epochs in %.1fs (strategy time %v)\n",
		cfg.Policy.Name(), cfg.Params.M, cfg.Params.K, len(res.Stats), cfg.Epochs, time.Since(start).Seconds(),
		res.StrategyTime.Round(time.Millisecond))

	tab := metrics.NewTable("per-epoch statistics (population means)",
		"epoch", "utility", "trading", "sharing", "staleness", "price", "x̄", "E[q]")
	for _, es := range res.Stats {
		if err := tab.AddRow(
			fmt.Sprintf("%d", es.Epoch),
			fmt.Sprintf("%.1f", es.MeanUtility),
			fmt.Sprintf("%.1f", es.MeanTrading),
			fmt.Sprintf("%.1f", es.MeanSharing),
			fmt.Sprintf("%.1f", es.MeanStale),
			fmt.Sprintf("%.3f", es.MeanPrice),
			fmt.Sprintf("%.3f", es.MeanRate),
			fmt.Sprintf("%.1f", es.MeanRemain),
		); err != nil {
			return err
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	if len(res.Ledgers) > 0 {
		l := res.MeanLedger()
		fmt.Printf("\nwhole-run ledger (population mean): utility %.1f = trading %.1f + sharing %.1f − placement %.1f − staleness %.1f − share cost %.1f\n",
			res.MeanUtility(), l.Trading, l.Sharing, l.Placement, l.Staleness, l.ShareCost)
	}
	return tel.summary("market")
}

// parseFaultPlan parses the -fault-plan specification: comma-separated
// key=value pairs with keys churn, drop, solver (probabilities), seed and
// budget (integers). Unset keys default to zero.
func parseFaultPlan(spec string) (*sim.FaultPlan, error) {
	plan := &sim.FaultPlan{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("fault plan: %q is not key=value", field)
		}
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		switch key {
		case "churn", "drop", "solver":
			p, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, fmt.Errorf("fault plan: %s: %w", key, err)
			}
			switch key {
			case "churn":
				plan.EDPChurn = p
			case "drop":
				plan.DropShare = p
			case "solver":
				plan.SolverFail = p
			}
		case "seed":
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault plan: seed: %w", err)
			}
			plan.Seed = n
		case "budget":
			n, err := strconv.Atoi(value)
			if err != nil {
				return nil, fmt.Errorf("fault plan: budget: %w", err)
			}
			plan.ErrorBudget = n
		default:
			return nil, fmt.Errorf("fault plan: unknown key %q (want churn, drop, solver, seed or budget)", key)
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

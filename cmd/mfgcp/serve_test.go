package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the daemon to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitReady polls /healthz until the daemon answers.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// TestServeEndToEnd is the CLI-level serve acceptance: start `mfgcp serve`
// in-process on a small grid, answer /healthz and a converged /v1/solve, and
// exit 0 on SIGTERM while draining.
func TestServeEndToEnd(t *testing.T) {
	addr := freePort(t)
	cfgPath := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(cfgPath, []byte(`{"Solver": {"NH": 7, "NQ": 15, "Steps": 24}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", addr, "-config", cfgPath, "-drain-timeout", "30s"})
	}()
	base := "http://" + addr
	waitReady(t, base)

	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"Workload": {"Requests": 12, "Pop": 0.25, "Timeliness": 3}}`))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/solve: status %d body %s", resp.StatusCode, body)
	}
	var out struct {
		Converged bool      `json:"converged"`
		Price     []float64 `json:"price"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if !out.Converged || len(out.Price) == 0 {
		t.Fatalf("equilibrium summary not converged: %s", body)
	}

	// The daemon mounts its metrics on the same port.
	resp, err = http.Get(base + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %v %v", resp, err)
	}
	resp.Body.Close()

	// SIGTERM drains and the command returns nil — the exit-0 contract.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestSolveConfigFile checks `mfgcp solve -config` decodes the request-shaped
// document and that explicit flags override it.
func TestSolveConfigFile(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "solve.json")
	doc := `{
  "Params": {"Qk": 80},
  "Solver": {"NH": 5, "NQ": 11, "Steps": 12},
  "Workload": {"Requests": 8, "Pop": 0.2, "Timeliness": 2}
}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-config", cfgPath, "-pop", "0.4"}); err != nil {
		t.Fatalf("solve -config: %v", err)
	}
	// A malformed document fails with a decode error naming the file.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"Solver": {"Damp": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"solve", "-config", bad})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("bad config: got %v, want unknown-field error", err)
	}
}

// TestMarketConfigFile checks `mfgcp market -config` end to end with a flag
// override.
func TestMarketConfigFile(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "market.json")
	doc := fmt.Sprintf(`{
  "Params": {"M": 8, "K": 3},
  "Policy": "rr",
  "Epochs": 3,
  "StepsPerEpoch": 6,
  "Solver": {"NH": 5, "NQ": 11, "Steps": 12}
}`)
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	// -epochs set explicitly wins over the file's 3.
	if err := run([]string{"market", "-config", cfgPath, "-epochs", "1"}); err != nil {
		t.Fatalf("market -config: %v", err)
	}
	err := run([]string{"market", "-config", cfgPath, "-policy", "lfu"})
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("unknown policy: got %v", err)
	}
}

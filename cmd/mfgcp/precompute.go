package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	mfgcp "repro"
	"repro/internal/engine"
	"repro/internal/surrogate"
)

// parseAxisSpec parses one lattice-axis flag value. The accepted forms are
// "min:max:n" (n uniform nodes over [min, max]) and a bare "v" (freeze the
// axis at v — one node, no interpolation along it).
func parseAxisSpec(name, value string) (surrogate.AxisSpec, error) {
	parts := strings.Split(value, ":")
	switch len(parts) {
	case 1:
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return surrogate.AxisSpec{}, fmt.Errorf("-%s %q: %w", name, value, err)
		}
		return surrogate.AxisSpec{Min: v, Max: v, N: 1}, nil
	case 3:
		min, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return surrogate.AxisSpec{}, fmt.Errorf("-%s %q: min: %w", name, value, err)
		}
		max, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return surrogate.AxisSpec{}, fmt.Errorf("-%s %q: max: %w", name, value, err)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return surrogate.AxisSpec{}, fmt.Errorf("-%s %q: n: %w", name, value, err)
		}
		return surrogate.AxisSpec{Min: min, Max: max, N: n}, nil
	default:
		return surrogate.AxisSpec{}, fmt.Errorf("-%s %q: want \"min:max:n\" or a single frozen value", name, value)
	}
}

// precomputeCmd implements `mfgcp precompute`: the offline sweep that turns a
// lattice over the workload space into the serving daemon's tier-0 surrogate
// table. Every lattice node is solved to equilibrium with a parallel
// warm-session pool, every cell midpoint is solved as a held-out probe, and
// the measured interpolation error (times -safety) becomes the cell's
// declared error bound. The result is written atomically to -out, ready for
// `mfgcp serve -surrogate` / `mfgcp solve -surrogate`.
//
// Configuration precedence mirrors solve/serve: the defaults, then -config
// FILE (Params/Solver sections of a /v1/solve-shaped document), then every
// flag set explicitly on the command line.
func precomputeCmd(args []string) (retErr error) {
	fs := flag.NewFlagSet("precompute", flag.ContinueOnError)
	out := fs.String("out", "surrogate.mfgt", "output table file (written atomically)")
	configPath := fs.String("config", "", "JSON defaults for Params/Solver (same shape as a /v1/solve body)")
	requests := fs.String("requests", "6:14:5", "request-load axis: \"min:max:n\" or a frozen value")
	pop := fs.String("pop", "0.1:0.5:5", "popularity axis: \"min:max:n\" or a frozen value")
	timeliness := fs.String("timeliness", "2", "timeliness axis: \"min:max:n\" or a frozen value")
	workers := fs.Int("workers", 0, "parallel lattice solvers (0 = one per CPU)")
	safety := fs.Float64("safety", 2, "error-bound safety factor over the measured midpoint error (≥ 1)")
	nh := fs.Int("nh", 0, "h-grid nodes (0 keeps the default)")
	nq := fs.Int("nq", 0, "q-grid nodes (0 keeps the default)")
	steps := fs.Int("steps", 0, "time steps (0 keeps the default)")
	scheme := fs.String("scheme", "", "PDE time integrator: implicit (default) or explicit")
	kernelWorkers := fs.Int("kernel-workers", 0, "parallel PDE line-sweep workers per solve (0 or 1 is serial)")
	precision := fs.String("precision", "", "PDE kernel precision: float64 (default) or float32 (fast path, implicit scheme only)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := tel.finish(); ferr != nil && retErr == nil {
			retErr = fmt.Errorf("telemetry: %w", ferr)
		}
	}()

	params := mfgcp.DefaultParams()
	solver := mfgcp.DefaultSolverConfig(params)
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		var file solveFile
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
		if len(file.Params) > 0 {
			if params, err = engine.DecodeParams(file.Params, params); err != nil {
				return fmt.Errorf("-config %s: %w", *configPath, err)
			}
			solver.Params = params
		}
		if len(file.Solver) > 0 {
			if solver, err = engine.DecodeConfig(file.Solver, solver); err != nil {
				return fmt.Errorf("-config %s: %w", *configPath, err)
			}
		}
		if len(file.Workload) > 0 {
			return fmt.Errorf("-config %s: a Workload section is per-request; precompute sweeps the axis flags instead", *configPath)
		}
	}
	// Explicit flags win over the -config file, mirroring solve/serve.
	set := setFlags(fs)
	if set["nh"] && *nh > 0 {
		solver.NH = *nh
	}
	if set["nq"] && *nq > 0 {
		solver.NQ = *nq
	}
	if set["steps"] && *steps > 0 {
		solver.Steps = *steps
	}
	if set["scheme"] {
		solver.Scheme = *scheme
	}
	if set["kernel-workers"] {
		solver.Kernel.Workers = *kernelWorkers
	}
	if set["precision"] {
		solver.Kernel.Precision = *precision
	}
	// A table must not carry a surrogate reference of its own: the solves
	// behind it are the ground truth the bounds are measured against.
	solver.Surrogate = engine.SurrogateConfig{}

	reqSpec, err := parseAxisSpec("requests", *requests)
	if err != nil {
		return err
	}
	popSpec, err := parseAxisSpec("pop", *pop)
	if err != nil {
		return err
	}
	timSpec, err := parseAxisSpec("timeliness", *timeliness)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	nodes := reqSpec.N * popSpec.N * timSpec.N
	fmt.Fprintf(os.Stderr, "mfgcp precompute: sweeping %d lattice nodes (%d×%d×%d) with %d workers\n",
		nodes, reqSpec.N, popSpec.N, timSpec.N, nWorkers)

	start := time.Now()
	tab, err := surrogate.Build(ctx, surrogate.BuildConfig{
		Config:       solver,
		Requests:     reqSpec,
		Pop:          popSpec,
		Timeliness:   timSpec,
		Workers:      *workers,
		SafetyFactor: *safety,
		Obs:          tel.Rec,
	})
	if err != nil {
		return err
	}
	if err := tab.Save(*out); err != nil {
		return err
	}
	inRegion := 0
	for _, b := range tab.Bounds {
		if !math.IsInf(b, 1) {
			inRegion++
		}
	}
	fmt.Printf("surrogate table: %d nodes, %d/%d cells in the trust region, %.1fs\n",
		nodes, inRegion, len(tab.Bounds), time.Since(start).Seconds())
	fmt.Printf("[surrogate table written to %s]\n", *out)
	return tel.summary("precompute")
}

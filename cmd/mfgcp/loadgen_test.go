package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestLoadgenEndToEnd is the CLI-level loadgen acceptance: against an
// in-process `mfgcp serve` on a small grid, a generous SLO run exits 0 and
// emits a JSON report carrying the latency quantiles and rates, while a
// deliberately unattainable SLO makes the command return an error — the
// non-zero exit CI gates on.
func TestLoadgenEndToEnd(t *testing.T) {
	addr := freePort(t)
	cfgPath := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(cfgPath, []byte(`{"Solver": {"NH": 7, "NQ": 15, "Steps": 24}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", addr, "-config", cfgPath})
	}()
	defer func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned %v after SIGTERM", err)
		}
	}()
	base := "http://" + addr
	waitReady(t, base)

	reportPath := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{"loadgen",
		"-target", base,
		"-rps", "40", "-duration", "1s", "-epochs", "1",
		"-out", reportPath,
		"-slo-p99", "60s", "-slo-error-rate", "0", "-slo-timeout-rate", "0",
	})
	if err != nil {
		t.Fatalf("loadgen with generous SLO: %v", err)
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Sent    int64 `json:"sent"`
		Latency struct {
			P50  float64 `json:"p50"`
			P99  float64 `json:"p99"`
			P999 float64 `json:"p999"`
		} `json:"latency_ms"`
		ShedRate *float64 `json:"shed_rate"`
		Pass     bool     `json:"pass"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, raw)
	}
	if rep.Sent == 0 || !rep.Pass || rep.ShedRate == nil {
		t.Fatalf("implausible report: %s", raw)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.P999 < rep.Latency.P99 {
		t.Fatalf("latency quantiles missing or disordered: %s", raw)
	}

	// The deliberately unattainable bound: p99 under a nanosecond.
	err = run([]string{"loadgen",
		"-target", base,
		"-rps", "40", "-duration", "500ms", "-epochs", "1",
		"-slo-p99", "1ns",
	})
	if err == nil || !strings.Contains(err.Error(), "SLO violated") {
		t.Fatalf("unattainable SLO: got %v, want SLO violation error", err)
	}
}

// Command mfgcp regenerates the tables and figures of the MFG-CP paper
// (ICDE 2024) from this repository's reproduction.
//
// Usage:
//
//	mfgcp list                 list available experiments
//	mfgcp all [flags]          run every experiment
//	mfgcp <id> [flags]         run one experiment (fig3..fig14, table2)
//
// Flags:
//
//	-quick              shrink grids/populations for a fast smoke run
//	-seed N             RNG seed (default 1)
//	-csv DIR            also write every table/series as CSV files into DIR
//	-scheme NAME        PDE time integrator: implicit (default) or explicit
//	-eq-cache N         equilibrium cache capacity for market runs (0 = off)
//	-deadline D         abort after duration D (e.g. 10m); SIGINT/SIGTERM also
//	                    cancel cleanly
//	-log-level LEVEL    structured slog tracing (debug shows solver spans and
//	                    per-iteration residuals)
//	-metrics-addr ADDR  serve /metrics, /debug/vars and /debug/pprof
//	-trace-out FILE     write a JSON telemetry snapshot to FILE
//
// `mfgcp market` additionally supports the resilience flags -checkpoint DIR
// (atomic epoch-boundary snapshots), -resume (bit-for-bit restart from the
// snapshot), -fault-plan SPEC (seeded fault injection) and -recover
// (divergence-recovery ladder); see `mfgcp market -h`.
//
// `mfgcp serve` runs the long-running equilibrium-serving daemon (HTTP/JSON:
// POST /v1/solve, POST /v1/policy/epoch, /healthz, /readyz); see
// `mfgcp serve -h` and the README's Serving section.
//
// `mfgcp precompute` sweeps a lattice over the quantised workload space
// offline into a compact surrogate table of equilibrium summaries with
// measured per-cell error bounds; `mfgcp serve -surrogate TABLE` and
// `mfgcp solve -surrogate TABLE` then answer in-region requests from it by
// multilinear interpolation, falling back to the exact solver outside the
// trust region.
//
// `mfgcp loadgen` replays trace-derived workloads against a running daemon at
// a constant open-loop rate and reports p50/p99/p999 latency plus
// error/shed/timeout rates as JSON, exiting non-zero when a declared SLO is
// violated; see `mfgcp loadgen -h` and the README's Load testing section.
//
// `mfgcp serve` daemons also form a sharded fleet: `-peers` declares a static
// consistent-hash ring over the members, and local cache misses are filled
// from the key's ring owner before solving cold (source "peer"); `mfgcp
// manifests` renders the matching Kubernetes StatefulSet, Services and pinned
// autoscaler into deploy/; see the README's Running a fleet section.
//
// `mfgcp verify` runs the numerical verification suite (invariant oracles,
// cross-scheme differential tests, convergence-order estimation, property
// sweep) and exits non-zero on any violation; see `mfgcp verify -h` and the
// README's Verifying section.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mfgcp:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing experiment id")
	}
	cmd := args[0]
	switch cmd {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "solve":
		return solveCmd(args[1:])
	case "precompute":
		return precomputeCmd(args[1:])
	case "market":
		return marketCmd(args[1:])
	case "serve":
		return serveCmd(args[1:])
	case "loadgen":
		return loadgenCmd(args[1:])
	case "manifests":
		return manifestsCmd(args[1:])
	case "verify":
		return verifyCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	}

	fs := flag.NewFlagSet("mfgcp", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink grids/populations for a fast run")
	seed := fs.Int64("seed", 1, "RNG seed")
	csvDir := fs.String("csv", "", "write CSV artefacts into this directory")
	scheme := fs.String("scheme", "", "PDE time integrator: implicit (default) or explicit")
	eqCache := fs.Int("eq-cache", 0, "equilibrium cache capacity for market runs (0 = off)")
	deadline := fs.Duration("deadline", 0, "abort the run after this duration (0 = none)")
	of := addObsFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	tel, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := tel.finish(); ferr != nil && retErr == nil {
			retErr = fmt.Errorf("telemetry: %w", ferr)
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	opt := experiments.Options{
		Seed:        *seed,
		Quick:       *quick,
		Obs:         tel.Rec,
		Scheme:      *scheme,
		EqCacheSize: *eqCache,
		Context:     ctx,
	}

	if cmd != "all" && !knownExperiment(cmd) {
		tel.errorLogger().Error("unknown experiment",
			"id", cmd,
			"known", strings.Join(experiments.IDs(), ","))
		return fmt.Errorf("unknown experiment %q (run `mfgcp list`)", cmd)
	}

	if cmd == "all" {
		for _, id := range experiments.IDs() {
			if err := runOne(id, opt, *csvDir, tel); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(cmd, opt, *csvDir, tel)
}

// setFlags returns the names of the flags set explicitly on the command
// line, so file-provided configuration loses only to deliberate overrides.
func setFlags(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

func knownExperiment(id string) bool {
	for _, known := range experiments.IDs() {
		if id == known {
			return true
		}
	}
	return false
}

func runOne(id string, opt experiments.Options, csvDir string, tel *telemetry) error {
	start := time.Now()
	rep, err := experiments.Run(id, opt)
	if err != nil {
		return err
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	if csvDir != "" {
		if err := rep.WriteCSV(csvDir); err != nil {
			return err
		}
		fmt.Printf("[CSV artefacts written to %s]\n", csvDir)
	}
	return tel.summary(id)
}

func usage() {
	fmt.Fprint(os.Stderr, `mfgcp — reproduce the MFG-CP paper's evaluation

usage:
  mfgcp list                 list available experiments
  mfgcp all [flags]          run every experiment
  mfgcp <id> [flags]         run one experiment (e.g. fig5, table2)
  mfgcp solve [flags]        solve one custom equilibrium (see solve -h)
  mfgcp precompute [flags]   sweep a workload lattice into a surrogate table (see precompute -h)
  mfgcp market [flags]       run one agent-based market (see market -h)
  mfgcp serve [flags]        run the equilibrium-serving daemon (see serve -h)
  mfgcp loadgen [flags]      load-test a running daemon against an SLO (see loadgen -h)
  mfgcp manifests [flags]    render the Kubernetes fleet manifests (see manifests -h)
  mfgcp verify [flags]       run the numerical verification suite (see verify -h)

flags:
  -quick              fast smoke run (smaller grids and populations)
  -seed N             RNG seed (default 1)
  -csv DIR            also write CSV artefacts into DIR
  -scheme NAME        PDE time integrator: implicit (default) or explicit
  -eq-cache N         equilibrium cache capacity for market runs (0 = off)
  -deadline D         abort after duration D; SIGINT/SIGTERM cancel cleanly
  -log-level LEVEL    structured slog tracing: debug, info, warn, error
  -metrics-addr ADDR  serve /metrics, /debug/vars and /debug/pprof on ADDR
  -trace-out FILE     write a JSON telemetry snapshot to FILE

market resilience flags (see mfgcp market -h):
  -checkpoint DIR     atomic epoch-boundary snapshots into DIR
  -resume             bit-for-bit restart from the snapshot in -checkpoint
  -fault-plan SPEC    seeded fault injection (churn=,drop=,solver=,seed=,budget=)
  -recover            retry failing solves under the escalation ladder

solve/market/precompute also accept -config FILE (sparse JSON configuration
merged over the defaults; explicitly-set flags win). serve answers POST
/v1/solve and POST /v1/policy/epoch with bounded workers, request coalescing,
load shedding and graceful drain (see mfgcp serve -h); with -surrogate TABLE
it answers in-region requests from the precomputed tier-0 table first.
`)
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// helperRunEnv re-enters the test binary as a plain `mfgcp` process: when the
// variable holds a JSON args array, TestMain executes run(args) instead of the
// test suite. The kill-and-restart chaos test needs a real child process — a
// SIGKILL cannot be caught, so it cannot be simulated in-process the way the
// SIGINT/SIGTERM tests do — and re-execing the (race-instrumented) test binary
// keeps the daemon under the same detector as everything else.
const helperRunEnv = "MFGCP_HELPER_RUN"

func TestMain(m *testing.M) {
	if doc := os.Getenv(helperRunEnv); doc != "" {
		var args []string
		if err := json.Unmarshal([]byte(doc), &args); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", helperRunEnv, err)
			os.Exit(2)
		}
		if err := run(args); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startServeProc launches `mfgcp serve` with the given args as a real child
// process (via the helper re-exec) and returns the running command.
func startServeProc(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(append([]string{"serve"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), helperRunEnv+"="+string(doc))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return cmd
}

// solveBodyWithoutSource re-encodes a solve body with its provenance removed:
// the equilibrium must survive a restart bit-for-bit even though the source
// field legitimately flips from "solve" to "store".
func solveBodyWithoutSource(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decode solve body %q: %v", data, err)
	}
	delete(m, "source")
	delete(m, "error_bound")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// scrapeCounter reads one counter from the daemon's Prometheus exposition.
func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("scrape metrics: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if metric, value, ok := strings.Cut(sc.Text(), " "); ok && metric == name {
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("counter %s: %v", name, err)
			}
			return v
		}
	}
	return 0
}

// TestServeKillRestartChaos is the durability acceptance end to end, against
// the real binary:
//
//  1. a daemon with -cache-dir serves a working set, then dies by SIGKILL
//     mid-load — no drain, no fsync of the active tail;
//  2. the segment on disk gains a seeded torn tail (the half-written frame a
//     crash mid-append leaves behind);
//  3. a restarted daemon over the same directory must recover by truncating
//     the torn tail, answer the working set warm from the store
//     (byte-identical to the pre-kill responses, warm hit rate > 0, zero
//     corrupted 200s) and still drain cleanly on SIGTERM.
func TestServeKillRestartChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns real daemon processes")
	}
	dir := t.TempDir()
	cfgPath := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(cfgPath, []byte(`{"Solver": {"NH": 7, "NQ": 15, "Steps": 24}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	base := "http://" + addr
	args := []string{"-addr", addr, "-config", cfgPath, "-cache-dir", dir}

	daemon := startServeProc(t, args...)
	waitReady(t, base)

	// Warm the working set: distinct workloads, each a fresh solve whose
	// response bytes are the ground truth for the post-restart replay.
	bodies := make([]string, 6)
	want := make([][]byte, len(bodies))
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"Workload": {"Requests": %d, "Pop": 0.%d5, "Timeliness": 3}}`, 8+i, i+1)
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(bodies[i]))
		if err != nil {
			t.Fatalf("warm-up solve %d: %v", i, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up solve %d: status %d body %s", i, resp.StatusCode, data)
		}
		want[i] = data
	}
	// Give the write-behind queue a beat to land the records in the page
	// cache (SIGKILL preserves written file contents; only a machine crash
	// needs the fsync the drain path does).
	time.Sleep(300 * time.Millisecond)

	// SIGKILL mid-load: keep traffic in flight so the kill lands while the
	// daemon is actually working, not idle.
	stop := make(chan struct{})
	var load sync.WaitGroup
	load.Add(1)
	go func() {
		defer load.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(base+"/v1/solve", "application/json",
				strings.NewReader(bodies[i%len(bodies)]))
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err := daemon.Wait()
	close(stop)
	load.Wait()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("daemon exit after SIGKILL: %v", err)
	}

	// Seed the torn tail the kill could have left (and on a fast disk usually
	// does not): a partial frame appended to the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments on disk after kill (err=%v)", err)
	}
	sort.Strings(segs)
	tail := segs[len(segs)-1]
	st, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	cleanSize := st.Size()
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn frame: a crash interrupted this append")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart over the same directory.
	addr2 := freePort(t)
	base2 := "http://" + addr2
	args2 := []string{"-addr", addr2, "-config", cfgPath, "-cache-dir", dir}
	daemon2 := startServeProc(t, args2...)
	waitReady(t, base2)

	// Recovery truncated the torn tail before serving.
	if st, err = os.Stat(tail); err != nil {
		t.Fatal(err)
	}
	if st.Size() != cleanSize {
		t.Errorf("segment %s is %d bytes after recovery, want %d (torn tail truncated)",
			filepath.Base(tail), st.Size(), cleanSize)
	}
	if got := scrapeCounter(t, base2, "store_truncated_total"); got < 1 {
		t.Errorf("store_truncated_total = %g, want ≥ 1", got)
	}

	// Replay the working set: every answer a 200 with the identical
	// equilibrium as its pre-kill response (zero corrupted 200s; the source
	// field legitimately changes from "solve" to "store"), with a warm store
	// hit rate above zero — the restarted daemon did not cold-start the
	// working set.
	storeHits := 0
	for i, body := range bodies {
		resp, err := http.Post(base2+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("replay solve %d: %v", i, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay solve %d: status %d body %s", i, resp.StatusCode, data)
		}
		if !bytes.Equal(solveBodyWithoutSource(t, data), solveBodyWithoutSource(t, want[i])) {
			t.Errorf("replay solve %d: equilibrium differs from pre-kill response:\n%s\nvs\n%s", i, data, want[i])
		}
		if resp.Header.Get("X-Mfgcp-Cache") == "store" {
			storeHits++
		}
	}
	if storeHits == 0 {
		t.Error("warm store hit rate is zero after restart: nothing survived the kill")
	}
	if got := scrapeCounter(t, base2, "store_hit_total"); got < float64(storeHits) {
		t.Errorf("store_hit_total = %g, want ≥ %d", got, storeHits)
	}

	// The restarted daemon still drains cleanly.
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon2.Wait(); err != nil {
		t.Fatalf("restarted daemon exit after SIGTERM: %v, want 0", err)
	}
}

package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"

	"repro/internal/obs"
)

// obsFlags carries the observability flags shared by every mfgcp subcommand:
//
//	-log-level LEVEL    structured slog tracing to stderr (debug shows spans
//	                    and per-iteration residual events)
//	-metrics-addr ADDR  serve /metrics, /debug/vars and /debug/pprof
//	-trace-out FILE     write the final JSON telemetry snapshot to FILE
//
// With none of them set the pipeline runs on the no-op recorder and output is
// byte-identical to an uninstrumented build.
type obsFlags struct {
	logLevel    string
	metricsAddr string
	traceOut    string
}

// addObsFlags registers the shared flags on fs.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{}
	fs.StringVar(&f.logLevel, "log-level", "", "structured log level: debug, info, warn, error (empty = telemetry off)")
	fs.StringVar(&f.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	fs.StringVar(&f.traceOut, "trace-out", "", "write a JSON telemetry snapshot to this file at the end of the run")
	return f
}

func (f *obsFlags) enabled() bool {
	return f.logLevel != "" || f.metricsAddr != "" || f.traceOut != ""
}

// telemetry is the live observability state of one CLI invocation.
type telemetry struct {
	Rec      obs.Recorder // obs.Nop when telemetry is off
	reg      *obs.Registry
	logger   *slog.Logger
	srv      *http.Server
	traceOut string
}

// setup builds the recorder, logger and optional metrics server the flags ask
// for. It always returns a usable telemetry (Rec == obs.Nop when disabled).
func (f *obsFlags) setup() (*telemetry, error) {
	t := &telemetry{Rec: obs.Nop}
	if !f.enabled() {
		return t, nil
	}
	level := slog.LevelInfo
	if f.logLevel != "" {
		var err error
		if level, err = obs.ParseLevel(f.logLevel); err != nil {
			return nil, err
		}
	}
	t.logger = obs.NewLogger(os.Stderr, level)
	t.reg = obs.NewRegistry(t.logger)
	t.Rec = t.reg
	t.traceOut = f.traceOut
	if f.metricsAddr != "" {
		srv, addr, err := obs.Serve(f.metricsAddr, t.reg)
		if err != nil {
			return nil, err
		}
		t.srv = srv
		t.logger.Info("telemetry server listening",
			"addr", addr.String(),
			"endpoints", "/metrics /debug/vars /debug/pprof")
	}
	return t, nil
}

// summary prints the current telemetry snapshot to stderr under the given
// heading. No-op when telemetry is off.
func (t *telemetry) summary(heading string) error {
	if t.reg == nil {
		return nil
	}
	if _, err := fmt.Fprintf(os.Stderr, "--- telemetry: %s ---\n", heading); err != nil {
		return err
	}
	return t.reg.Snapshot().Render(os.Stderr)
}

// finish dumps the -trace-out snapshot and stops the metrics server.
func (t *telemetry) finish() error {
	if t.reg == nil {
		return nil
	}
	var firstErr error
	if t.traceOut != "" {
		if err := t.reg.Snapshot().WriteJSONFile(t.traceOut); err != nil {
			firstErr = err
		} else {
			t.logger.Info("telemetry snapshot written", "path", t.traceOut)
		}
	}
	if t.srv != nil {
		if err := t.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// errorLogger returns the telemetry trace logger when live, falling back to a
// stderr logger so structured error records are emitted even with telemetry
// off.
func (t *telemetry) errorLogger() *slog.Logger {
	if t.logger != nil {
		return t.logger
	}
	return obs.NewLogger(os.Stderr, slog.LevelError)
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	mfgcp "repro"
	"repro/internal/engine"
	"repro/internal/verify"
)

// verifyFile is the -config document of `mfgcp verify`: the solve-shaped
// Params/Solver/Workload sections plus an optional Tolerances section
// merged over verify.DefaultTolerances.
type verifyFile struct {
	Params     json.RawMessage `json:",omitempty"`
	Solver     json.RawMessage `json:",omitempty"`
	Workload   json.RawMessage `json:",omitempty"`
	Tolerances json.RawMessage `json:",omitempty"`
}

// verifyCmd implements `mfgcp verify`: run the numerical verification suite
// (invariant oracles, differential harnesses, convergence-order estimation,
// property sweep) and exit non-zero when any check fails.
func verifyCmd(args []string) (retErr error) {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run the quick tier (the default)")
	full := fs.Bool("full", false, "run the full tier (order estimation for every scheme, finite-M differential, wide sweep)")
	seed := fs.Int64("seed", 1, "seed of the property-based generators")
	cases := fs.Int("cases", 0, "property-sweep size (0 = tier default)")
	configPath := fs.String("config", "", "JSON verification configuration merged over the defaults (Params/Solver/Workload/Tolerances)")
	jsonOut := fs.Bool("json", false, "write the JSON report to stdout instead of the text summary")
	outPath := fs.String("out", "", "also write the JSON report to this file")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick && *full {
		return fmt.Errorf("verify: -quick and -full are mutually exclusive")
	}
	tel, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := tel.finish(); ferr != nil && retErr == nil {
			retErr = fmt.Errorf("telemetry: %w", ferr)
		}
	}()

	opts := verify.Options{Tier: verify.Quick, Seed: *seed, Cases: *cases, Obs: tel.Rec}
	if *full {
		opts.Tier = verify.Full
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		var file verifyFile
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&file); err != nil {
			return fmt.Errorf("-config %s: %w", *configPath, err)
		}
		params := mfgcp.DefaultParams()
		if len(file.Params) > 0 {
			if params, err = engine.DecodeParams(file.Params, params); err != nil {
				return fmt.Errorf("-config %s: %w", *configPath, err)
			}
		}
		opts.Params = params
		if len(file.Solver) > 0 {
			solver, err := engine.DecodeConfig(file.Solver, verify.DefaultSolverConfig(params))
			if err != nil {
				return fmt.Errorf("-config %s: %w", *configPath, err)
			}
			solver.Params = params
			opts.Solver = solver
		}
		if len(file.Workload) > 0 {
			if opts.Workload, err = engine.DecodeWorkload(file.Workload); err != nil {
				return fmt.Errorf("-config %s: %w", *configPath, err)
			}
		}
		if len(file.Tolerances) > 0 {
			tol := verify.DefaultTolerances()
			tdec := json.NewDecoder(bytes.NewReader(file.Tolerances))
			tdec.DisallowUnknownFields()
			if err := tdec.Decode(&tol); err != nil {
				return fmt.Errorf("-config %s: Tolerances: %w", *configPath, err)
			}
			opts.Tol = tol
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := verify.Run(ctx, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := report.MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(report.Summary())
	}
	if *outPath != "" {
		data, err := report.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if err := tel.summary("verify"); err != nil {
		return err
	}
	if !report.Passed {
		return fmt.Errorf("verification failed: %d violation(s) across %d checks (tier %s)",
			len(report.Violations()), len(report.Checks), report.Tier)
	}
	return nil
}

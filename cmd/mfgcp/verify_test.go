package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestVerifySubcommandQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	if err := run([]string{"verify", "-quick", "-cases", "1", "-out", out}); err != nil {
		t.Fatalf("verify -quick failed on the defaults: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var report struct {
		Tier   string `json:"tier"`
		Passed bool   `json:"passed"`
		Checks []struct {
			Name string `json:"name"`
		} `json:"checks"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Tier != "quick" || !report.Passed || len(report.Checks) == 0 {
		t.Fatalf("unexpected report: %+v", report)
	}
}

// TestVerifySubcommandBrokenToleranceExitsNonZero is the acceptance check:
// with a -config that tightens the scheme tolerance below the integrators'
// genuine O(dt) gap, `mfgcp verify` must report failure (main maps the
// returned error to exit status 1).
func TestVerifySubcommandBrokenToleranceExitsNonZero(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "broken.json")
	cfg := `{"Tolerances": {"SchemeTol": 1e-9, "DensityTol": 1e-9}}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"verify", "-cases", "1", "-config", cfgPath})
	if err == nil {
		t.Fatal("verify with a tolerance below the real scheme gap must fail")
	}
}

func TestVerifySubcommandConfigOverrides(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	cfg := `{
		"Params":     {"Eta2": 1.5},
		"Solver":     {"Steps": 48},
		"Workload":   {"Requests": 12, "Pop": 0.4, "Timeliness": 1},
		"Tolerances": {"SchemeTol": 0.05}
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-cases", "1", "-config", cfgPath}); err != nil {
		t.Fatalf("verify with sparse config overrides: %v", err)
	}
}

func TestVerifySubcommandFlagErrors(t *testing.T) {
	if err := run([]string{"verify", "-quick", "-full"}); err == nil {
		t.Error("-quick and -full together must error")
	}
	if err := run([]string{"verify", "-config", "/does/not/exist.json"}); err == nil {
		t.Error("missing config file must error")
	}
	if err := run([]string{"verify", "-no-such-flag"}); err == nil {
		t.Error("unknown flag must error")
	}

	cfgPath := filepath.Join(t.TempDir(), "unknown.json")
	if err := os.WriteFile(cfgPath, []byte(`{"Tolernces": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-config", cfgPath}); err == nil {
		t.Error("unknown config field must error")
	}
}

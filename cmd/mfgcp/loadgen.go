package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/mec"
	"repro/internal/trace"
)

// loadgenCmd implements `mfgcp loadgen`: an open-loop constant-RPS load test
// against a running `mfgcp serve` daemon. Request bodies are derived from the
// synthetic viewing trace (internal/trace) — one workload per content per
// epoch — so the run exercises the same key diversity the market simulation
// does: cold solves on first sight, cache hits and request coalescing on
// repeats. The JSON report (p50/p99/p999 latency, error/shed/timeout rates)
// goes to stdout; when any declared SLO bound is violated the command exits
// non-zero.
func loadgenCmd(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the serve daemon, or a comma-separated fleet member list to spray round-robin")
	rps := fs.Float64("rps", 10, "offered request rate")
	duration := fs.Duration("duration", 5*time.Second, "generation window")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request client deadline")
	inflight := fs.Int("max-inflight", 256, "concurrent-request cap (overruns are dropped, not queued)")
	epochs := fs.Int("epochs", 3, "trace epochs to derive workloads from")
	reqPerEpoch := fs.Float64("requests-per-epoch", 2000, "trace request volume per epoch")
	seed := fs.Int64("seed", 1, "trace RNG seed (workload bodies are deterministic per seed)")
	out := fs.String("out", "", "also write the JSON report to this file")
	sloP50 := fs.Duration("slo-p50", 0, "p50 latency bound (0 = unchecked)")
	sloP99 := fs.Duration("slo-p99", 0, "p99 latency bound (0 = unchecked)")
	sloP999 := fs.Duration("slo-p999", 0, "p999 latency bound (0 = unchecked)")
	sloErr := fs.Float64("slo-error-rate", loadgen.Unchecked, "max error fraction (negative = unchecked)")
	sloShed := fs.Float64("slo-shed-rate", loadgen.Unchecked, "max shed fraction, 429/503s and drops (negative = unchecked)")
	sloTimeout := fs.Float64("slo-timeout-rate", loadgen.Unchecked, "max timeout fraction (negative = unchecked)")
	validate := fs.Bool("validate", false, "decode every 200 body and fail the run on corrupt responses")
	scrape := fs.Bool("scrape", false, "scrape the daemon's /metrics before/after and report cache-warmth and breaker counter deltas")
	if err := fs.Parse(args); err != nil {
		return err
	}

	bodies, err := traceBodies(*epochs, *reqPerEpoch, *seed)
	if err != nil {
		return err
	}

	var targets []string
	for _, tgt := range strings.Split(*target, ",") {
		if tgt = strings.TrimSpace(tgt); tgt != "" {
			targets = append(targets, tgt)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "mfgcp loadgen: %s for %s at %g rps (%d distinct workloads)\n",
		strings.Join(targets, ","), *duration, *rps, len(bodies))
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Targets:       targets,
		RPS:           *rps,
		Duration:      *duration,
		Timeout:       *timeout,
		MaxInFlight:   *inflight,
		Bodies:        bodies,
		Validate:      *validate,
		ScrapeMetrics: *scrape,
		SLO: loadgen.SLO{
			P50Ms:          float64(*sloP50) / 1e6,
			P99Ms:          float64(*sloP99) / 1e6,
			P999Ms:         float64(*sloP999) / 1e6,
			MaxErrorRate:   *sloErr,
			MaxShedRate:    *sloShed,
			MaxTimeoutRate: *sloTimeout,
		},
	})
	if err != nil {
		return err
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if _, err := os.Stdout.Write(doc); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			return err
		}
	}
	if !rep.Pass {
		return fmt.Errorf("SLO violated: %v", rep.Violations)
	}
	return nil
}

// traceBodies derives the /v1/solve request documents from the synthetic
// viewing trace: every content of every epoch becomes one body, replayed
// round-robin by the generator.
func traceBodies(epochs int, reqPerEpoch float64, seed int64) ([][]byte, error) {
	params := mec.Default()
	gen := trace.DefaultGenConfig()
	gen.Seed = seed
	ds, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}
	wls, err := trace.BuildWorkloads(ds, params, epochs, reqPerEpoch, seed)
	if err != nil {
		return nil, err
	}
	var bodies [][]byte
	for i := range wls {
		for k := 0; k < params.K; k++ {
			w, err := wls[i].Workload(k)
			if err != nil {
				return nil, err
			}
			body, err := json.Marshal(struct{ Workload core.Workload }{w})
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, body)
		}
	}
	return bodies, nil
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseAxisSpec(t *testing.T) {
	good := []struct {
		in       string
		min, max float64
		n        int
	}{
		{"8:12:5", 8, 12, 5},
		{"0.1:0.5:2", 0.1, 0.5, 2},
		{"2", 2, 2, 1},
		{"-1:1:3", -1, 1, 3},
	}
	for _, c := range good {
		spec, err := parseAxisSpec("axis", c.in)
		if err != nil {
			t.Fatalf("parseAxisSpec(%q): %v", c.in, err)
		}
		if spec.Min != c.min || spec.Max != c.max || spec.N != c.n {
			t.Errorf("parseAxisSpec(%q) = %+v, want {%g %g %d}", c.in, spec, c.min, c.max, c.n)
		}
	}
	for _, in := range []string{"", "1:2", "1:2:3:4", "a:2:3", "1:b:3", "1:2:c"} {
		if _, err := parseAxisSpec("axis", in); err == nil {
			t.Errorf("parseAxisSpec(%q) should error", in)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// TestPrecomputeServeSolveEndToEnd is the CLI acceptance of the surrogate
// pipeline: `mfgcp precompute` sweeps a tiny lattice into a table file,
// `mfgcp solve -surrogate` answers an in-region workload from it and falls
// back outside the trust region, and `mfgcp serve -surrogate` runs the table
// as tier 0 — an in-region request returns "source":"surrogate" with an error
// bound while an out-of-region request reaches the exact ladder.
func TestPrecomputeServeSolveEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "serve.json")
	if err := os.WriteFile(cfgPath, []byte(`{"Solver": {"NH": 5, "NQ": 15, "Steps": 16}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tabPath := filepath.Join(dir, "table.mfgt")

	out, err := captureStdout(t, func() error {
		return run([]string{"precompute", "-config", cfgPath, "-out", tabPath,
			"-requests", "8:12:2", "-pop", "0.2:0.4:2", "-timeliness", "2", "-workers", "2"})
	})
	if err != nil {
		t.Fatalf("precompute: %v", err)
	}
	if !strings.Contains(out, "1/1 cells in the trust region") {
		t.Fatalf("precompute output missing trust-region summary: %q", out)
	}
	if info, err := os.Stat(tabPath); err != nil || info.Size() == 0 {
		t.Fatalf("table file missing or empty: %v", err)
	}

	// In-region solve answers from the table (microseconds, no PDE sweep).
	out, err = captureStdout(t, func() error {
		return run([]string{"solve", "-config", cfgPath, "-surrogate", tabPath,
			"-requests", "10", "-pop", "0.3", "-timeliness", "2"})
	})
	if err != nil {
		t.Fatalf("solve -surrogate: %v", err)
	}
	if !strings.Contains(out, "surrogate: interpolated answer") {
		t.Fatalf("in-region solve did not answer from the table: %q", out)
	}

	// Out-of-region falls back to the exact solver.
	out, err = captureStdout(t, func() error {
		return run([]string{"solve", "-config", cfgPath, "-surrogate", tabPath,
			"-requests", "20", "-pop", "0.3", "-timeliness", "2"})
	})
	if err != nil {
		t.Fatalf("solve -surrogate out-of-region: %v", err)
	}
	if !strings.Contains(out, "equilibrium:") {
		t.Fatalf("out-of-region solve did not run the exact solver: %q", out)
	}

	// An impossibly tight -surrogate-max-bound shrinks the trust region to
	// nothing, so even the in-region workload solves exactly.
	out, err = captureStdout(t, func() error {
		return run([]string{"solve", "-config", cfgPath, "-surrogate", tabPath,
			"-surrogate-max-bound", "1e-12",
			"-requests", "10", "-pop", "0.3", "-timeliness", "2"})
	})
	if err != nil {
		t.Fatalf("solve -surrogate-max-bound: %v", err)
	}
	if strings.Contains(out, "surrogate: interpolated answer") {
		t.Fatalf("tight max bound must bypass the table: %q", out)
	}

	// The daemon serves the table as tier 0.
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", addr, "-config", cfgPath,
			"-surrogate", tabPath, "-drain-timeout", "30s"})
	}()
	base := "http://" + addr
	waitReady(t, base)

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/solve: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
		return resp.StatusCode, m
	}

	status, m := post(`{"Workload": {"Requests": 10, "Pop": 0.3, "Timeliness": 2}}`)
	if status != http.StatusOK {
		t.Fatalf("in-region: status %d body %v", status, m)
	}
	if m["source"] != "surrogate" {
		t.Fatalf("in-region source = %v, want surrogate", m["source"])
	}
	if b, ok := m["error_bound"].(float64); !ok || b <= 0 {
		t.Fatalf("in-region error_bound = %v, want > 0", m["error_bound"])
	}

	status, m = post(`{"Workload": {"Requests": 20, "Pop": 0.3, "Timeliness": 2}}`)
	if status != http.StatusOK {
		t.Fatalf("out-of-region: status %d body %v", status, m)
	}
	if m["source"] == "surrogate" {
		t.Fatal("out-of-region request must not answer from the table")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestServeSurrogateMissingTable pins the startup failure mode: a -surrogate
// path that does not exist fails fast instead of serving without tier 0.
func TestServeSurrogateMissingTable(t *testing.T) {
	err := run([]string{"serve", "-addr", "127.0.0.1:0", "-surrogate",
		filepath.Join(t.TempDir(), "nope.mfgt")})
	if err == nil || !strings.Contains(err.Error(), "surrogate") {
		t.Fatalf("missing table: got %v, want load error", err)
	}
}

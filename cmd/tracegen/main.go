// Command tracegen generates, inspects and converts the trending-video
// demand traces that drive the MEC market simulation.
//
// Usage:
//
//	tracegen gen  [-k N] [-days N] [-per-day N] [-seed N] [-o FILE]
//	tracegen info [-i FILE]
//
// `gen` writes a synthetic trace as CSV (stdout by default); `info` loads a
// CSV trace (a converted Kaggle dump or a generated one) and prints its
// per-category view shares and timeliness levels.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tracegen gen|info [flags]")
	}
	switch args[0] {
	case "gen":
		return genCmd(args[1:])
	case "info":
		return infoCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or info)", args[0])
	}
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	k := fs.Int("k", 20, "content categories")
	days := fs.Int("days", 30, "trace days")
	perDay := fs.Int("per-day", 200, "trending records per day")
	seed := fs.Int64("seed", 1, "RNG seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := trace.DefaultGenConfig()
	cfg.K = *k
	cfg.Days = *days
	cfg.VideosPerDay = *perDay
	cfg.Seed = *seed
	ds, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.Save(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d records (%d categories, %d days) to %s\n",
			len(ds.Records), ds.K, ds.Days, *out)
	}
	return nil
}

func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("i", "", "input CSV file (default stdin)")
	lmax := fs.Float64("lmax", 5, "timeliness scale L_max")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	ds, err := trace.Load(r)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d records, %d categories, %d days\n\n", len(ds.Records), ds.K, ds.Days)
	shares := ds.CategoryShares()
	timeliness := ds.Timeliness(*lmax)
	fmt.Printf("%-10s %12s %12s\n", "category", "view share", "timeliness")
	for c := 0; c < ds.K; c++ {
		fmt.Printf("%-10d %11.2f%% %12.2f\n", c, 100*shares[c], timeliness[c])
	}
	return nil
}

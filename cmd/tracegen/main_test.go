package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenAndInfoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	if err := run([]string{"gen", "-k", "5", "-days", "2", "-per-day", "10", "-o", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("generated trace is empty")
	}
	if err := run([]string{"info", "-i", out}); err != nil {
		t.Fatalf("info: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"gen", "-k", "0"}); err == nil {
		t.Error("invalid generator config should error")
	}
	if err := run([]string{"info", "-i", "/definitely/missing.csv"}); err == nil {
		t.Error("missing input should error")
	}
}

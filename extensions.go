package mfgcp

import (
	"io"

	"repro/internal/core"
	"repro/internal/exactgame"
)

// This file exposes the two extensions beyond the paper's headline framework:
// the capacity-constrained knapsack post-processing of Section IV-C's Remark,
// and the finite-M exact game of Fig. 2 used to validate the mean-field
// approximation.

// KnapsackItem is one content in the capacity-constrained allocation: the
// cache space its equilibrium strategy would consume and the utility it
// contributes.
type KnapsackItem = core.KnapsackItem

// AllocateFractional solves the continuous knapsack of the capacity
// extension: admitted fractions per content, greedy-optimal.
func AllocateFractional(items []KnapsackItem, capacity float64) ([]float64, error) {
	return core.AllocateFractional(items, capacity)
}

// Allocate01 solves the 0/1 variant exactly by dynamic programming on a
// discretised weight axis.
func Allocate01(items []KnapsackItem, capacity float64, resolution int) ([]bool, float64, error) {
	return core.Allocate01(items, capacity, resolution)
}

// CapacityItems derives knapsack inputs from solved per-content equilibria.
func CapacityItems(equilibria []*Equilibrium, seed int64, paths int) ([]KnapsackItem, error) {
	return core.CapacityItems(equilibria, seed, paths)
}

// ExactGameConfig controls a finite-M exact-game solve (the "original game"
// MFG-CP approximates).
type ExactGameConfig = exactgame.Config

// ExactGameAgentInit is one player's initial remaining-space distribution.
type ExactGameAgentInit = exactgame.AgentInit

// ExactGameSolution is the converged finite-M best-response outcome.
type ExactGameSolution = exactgame.Solution

// DefaultExactGameConfig returns moderate settings for an M-player solve.
func DefaultExactGameConfig(p Params) ExactGameConfig { return exactgame.DefaultConfig(p) }

// SolveExactGame runs sequential best response over M heterogeneous players
// against their exact finite-M aggregates. Cost grows linearly in M — the
// complexity MFG-CP eliminates.
func SolveExactGame(cfg ExactGameConfig, w Workload, inits []ExactGameAgentInit) (*ExactGameSolution, error) {
	return exactgame.Solve(cfg, w, inits)
}

// ReadEquilibrium deserialises an equilibrium written by Equilibrium.WriteTo,
// the cache format used to reuse expensive per-content solves across epochs
// and processes.
func ReadEquilibrium(r io.Reader) (*Equilibrium, error) {
	return core.ReadEquilibrium(r)
}

// Exactgame: validate the mean-field approximation against the finite-M
// "original game" (the left side of the paper's Fig. 2). For a symmetric
// population the exact best responses coincide with the MFG-CP strategy —
// the Eq. 5 price carries no own-supply term, so a symmetric population's
// aggregates equal the mean field exactly. Heterogeneity across players is
// what opens a gap, and the computation cost of the exact game grows
// linearly in M either way.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	mfgcp "repro"
)

func main() {
	params := mfgcp.DefaultParams()
	workload := mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}

	// Mean-field reference on the same grid.
	mfgCfg := mfgcp.DefaultSolverConfig(params)
	mfgCfg.NH, mfgCfg.NQ, mfgCfg.Steps = 5, 21, 30
	mfgEq, err := mfgcp.SolveEquilibrium(mfgCfg, workload)
	if err != nil {
		log.Fatalf("mean-field solve: %v", err)
	}

	exCfg := mfgcp.DefaultExactGameConfig(params)
	exCfg.NH, exCfg.NQ, exCfg.Steps = 5, 21, 30

	gapToMFG := func(sol *mfgcp.ExactGameSolution) float64 {
		n := exCfg.Steps / 2
		var gap float64
		for k := range mfgEq.HJB.X[n] {
			if d := math.Abs(sol.Agents[0].HJB.X[n][k] - mfgEq.HJB.X[n][k]); d > gap {
				gap = d
			}
		}
		return gap
	}

	fmt.Println("1. symmetric populations: the exact game reproduces the MFG while")
	fmt.Println("   its cost — the O(M·K·ψ) complexity of the original game — grows with M:")
	fmt.Printf("   %-6s %14s %12s %10s\n", "M", "gap to MFG", "PDE solves", "time")
	for _, m := range []int{3, 6, 12, 24} {
		inits := make([]mfgcp.ExactGameAgentInit, m)
		for i := range inits {
			inits[i] = mfgcp.ExactGameAgentInit{MeanQ: 70, StdQ: 10}
		}
		start := time.Now()
		sol, err := mfgcp.SolveExactGame(exCfg, workload, inits)
		if err != nil {
			log.Fatalf("M=%d: %v", m, err)
		}
		fmt.Printf("   %-6d %14.5f %12d %10s\n",
			m, gapToMFG(sol), sol.Solves, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\n2. heterogeneous populations: a mean-preserving spread of initial")
	fmt.Println("   inventories opens a gap to the mean field, closing as it narrows:")
	fmt.Printf("   %-10s %14s\n", "spread", "gap to MFG")
	for _, delta := range []float64{25, 15, 5} {
		inits := []mfgcp.ExactGameAgentInit{
			{MeanQ: 70 - delta, StdQ: 10},
			{MeanQ: 70 + delta, StdQ: 10},
			{MeanQ: 70 - delta/2, StdQ: 10},
			{MeanQ: 70 + delta/2, StdQ: 10},
		}
		sol, err := mfgcp.SolveExactGame(exCfg, workload, inits)
		if err != nil {
			log.Fatalf("spread=%g: %v", delta, err)
		}
		fmt.Printf("   ±%-9.0f %14.5f\n", delta, gapToMFG(sol))
	}
}

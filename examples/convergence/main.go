// Convergence: watch the iterative best-response learning scheme
// (Algorithm 2) contract to the unique mean-field equilibrium (Theorem 2),
// then follow representative EDPs from different initial caching states as
// their trajectories stabilise — the Fig. 9 experiment in miniature.
package main

import (
	"fmt"
	"log"
	"strings"

	mfgcp "repro"
)

func main() {
	params := mfgcp.DefaultParams()
	cfg := mfgcp.DefaultSolverConfig(params)
	workload := mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}

	eq, err := mfgcp.SolveEquilibrium(cfg, workload)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	fmt.Println("best-response residuals sup|x^ψ − x^(ψ−1)| per iteration:")
	for i, r := range eq.Residuals {
		bar := strings.Repeat("#", int(40*r/eq.Residuals[0]))
		fmt.Printf("  ψ=%2d  %.6f  %s\n", i+1, r, bar)
	}
	fmt.Printf("converged: %v (tolerance %g)\n\n", eq.Converged, cfg.Tol)

	fmt.Println("representative EDPs from different initial caching states:")
	fmt.Printf("  %-8s %12s %12s %14s\n", "q(0)", "q(T/2)", "q(T)", "total utility")
	for _, q0 := range []float64{30, 50, 70, 90} {
		roll, err := eq.EnsembleRollout(params.ChMean, q0, 3, 64)
		if err != nil {
			log.Fatal(err)
		}
		half := len(roll.Q) / 2
		u, _ := roll.Final()
		fmt.Printf("  %-8.0f %12.1f %12.1f %14.1f\n",
			q0, roll.Q[half], roll.Q[len(roll.Q)-1], u)
	}
	fmt.Println("\nshapes to observe (paper Fig. 9): trajectories flatten toward the")
	fmt.Println("end of the horizon, and the EDP starting with the most empty cache")
	fmt.Println("earns the lowest utility early on — it must buy its inventory first.")
}

// Capacity: the knapsack extension from the paper's Section IV-C Remark.
// When an EDP's total caching capacity is capped below what the per-content
// equilibrium strategies would consume, the final allocation is derived by a
// knapsack over the contents — weight = expected space consumed, value =
// expected utility contribution.
package main

import (
	"fmt"
	"log"

	mfgcp "repro"
)

func main() {
	params := mfgcp.DefaultParams()
	cfg := mfgcp.DefaultSolverConfig(params)
	cfg.NH, cfg.NQ, cfg.Steps = 9, 41, 60 // keep the demo quick

	// Solve equilibria for four contents with decreasing demand.
	workloads := []mfgcp.Workload{
		{Requests: 16, Pop: 0.40, Timeliness: 3},
		{Requests: 9, Pop: 0.25, Timeliness: 2},
		{Requests: 5, Pop: 0.20, Timeliness: 2},
		{Requests: 2, Pop: 0.15, Timeliness: 1},
	}
	equilibria := make([]*mfgcp.Equilibrium, len(workloads))
	for k, w := range workloads {
		eq, err := mfgcp.SolveEquilibrium(cfg, w)
		if err != nil {
			log.Fatalf("content %d: %v", k, err)
		}
		equilibria[k] = eq
	}

	items, err := mfgcp.CapacityItems(equilibria, 1, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-content space demand and utility value:")
	var totalWeight float64
	for _, it := range items {
		fmt.Printf("  content %d: weight %.1f MB, value %.1f $\n", it.Content, it.Weight, it.Value)
		totalWeight += it.Weight
	}

	capacity := totalWeight * 0.6 // the EDP can only serve 60% of the demand
	fmt.Printf("\ncapacity budget: %.1f MB of %.1f MB demanded\n", capacity, totalWeight)

	frac, err := mfgcp.AllocateFractional(items, capacity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfractional allocation (scales the equilibrium caching rates):")
	for i, it := range items {
		fmt.Printf("  content %d: %.0f%% admitted\n", it.Content, 100*frac[i])
	}

	take, value, err := mfgcp.Allocate01(items, capacity, 4000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n0/1 allocation (cache a content fully or not at all):")
	for i, it := range items {
		verdict := "skip"
		if take[i] {
			verdict = "cache"
		}
		fmt.Printf("  content %d: %s\n", it.Content, verdict)
	}
	fmt.Printf("0/1 total value: %.1f $\n", value)
}

// Baselines: head-to-head comparison of the five caching schemes of the
// paper's evaluation (MFG-CP, MFG, UDCS, MPC, RR) on one market workload —
// the Fig. 14 experiment in miniature.
package main

import (
	"fmt"
	"log"

	mfgcp "repro"
)

func main() {
	policies := []mfgcp.Policy{
		mfgcp.NewMFGCPPolicy(),
		mfgcp.NewMFGPolicy(),
		mfgcp.NewUDCSPolicy(),
		mfgcp.NewMPCPolicy(),
		mfgcp.NewRRPolicy(),
	}

	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"scheme", "utility", "trading", "sharing", "placement", "staleness")
	var mfgcpUtility, mpcUtility float64
	for _, pol := range policies {
		params := mfgcp.DefaultParams()
		params.M = 40
		params.K = 4
		cfg := mfgcp.DefaultMarketConfig(params, pol)
		cfg.Epochs = 2
		cfg.StepsPerEpoch = 25
		cfg.Seed = 11
		res, err := mfgcp.RunMarket(cfg)
		if err != nil {
			log.Fatalf("%s: %v", pol.Name(), err)
		}
		l := res.MeanLedger()
		u := res.MeanUtility()
		fmt.Printf("%-8s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			pol.Name(), u, l.Trading, l.Sharing, l.Placement, l.Staleness)
		switch pol.Name() {
		case "MFG-CP":
			mfgcpUtility = u
		case "MPC":
			mpcUtility = u
		}
	}
	if mpcUtility != 0 {
		fmt.Printf("\nMFG-CP / MPC utility ratio: %.2f (paper reports 2.76 on its unit system)\n",
			mfgcpUtility/mpcUtility)
	}
}

// Quickstart: solve one mean-field equilibrium for a single content and
// inspect the optimal caching strategy, the dynamic price trajectory and a
// representative EDP's profit decomposition.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	mfgcp "repro"
)

func main() {
	params := mfgcp.DefaultParams()

	// A popular content: 10 requesters per epoch, popularity 0.3, mid urgency.
	workload := mfgcp.Workload{Requests: 10, Pop: 0.3, Timeliness: 2}

	// Build the solver configuration with functional options (the defaults
	// alone also work: mfgcp.NewSolverConfig(params)).
	cfg, err := mfgcp.NewSolverConfig(params, mfgcp.WithScheme("implicit"))
	if err != nil {
		log.Fatalf("config: %v", err)
	}

	// The context-first solve honours deadlines and cancellation at
	// best-response-iteration granularity.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	eq, err := mfgcp.SolveEquilibriumContext(ctx, cfg, workload)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	fmt.Printf("equilibrium reached in %d best-response iterations (converged=%v)\n",
		eq.Iterations, eq.Converged)

	// The optimal caching strategy x*(t, h, q) — Theorem 1 feedback form.
	fmt.Println("\noptimal caching rate x*(t=0, h=υh, q):")
	for _, q := range []float64{10, 30, 50, 70, 90} {
		x, err := eq.HJB.ControlAt(0, params.ChMean, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q=%4.0f MB  x*=%.3f\n", q, x)
	}

	// The dynamic trading price from the mean-field estimator (Eq. 17).
	fmt.Println("\ndynamic price p(t):")
	for _, t := range []float64{0, 0.25, 0.5, 0.75, 1} {
		s := eq.SnapshotAt(t)
		fmt.Printf("  t=%.2f  p=%.3f $/MB  E[x*]=%.3f  q̄=%.1f MB\n",
			t, s.Price, s.MeanControl, s.QBar)
	}

	// A representative EDP's trajectory and profit decomposition.
	roll, err := eq.EnsembleRollout(params.ChMean, 0.7*params.Qk, 42, 32)
	if err != nil {
		log.Fatal(err)
	}
	u, trading := roll.Final()
	last := len(roll.Times) - 1
	fmt.Printf("\nrepresentative EDP over one epoch (q0 = 70 MB):\n")
	fmt.Printf("  final remaining space: %.1f MB\n", roll.Q[last])
	fmt.Printf("  accumulated utility:   %.1f $\n", u)
	fmt.Printf("  trading income:        %.1f $\n", trading)
}

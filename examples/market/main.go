// Market: a full agent-based MEC market (Algorithm 1) driven by a synthetic
// trending-video trace — M EDPs caching, pricing, trading and sharing K
// contents under the MFG-CP policy, with per-epoch market statistics.
package main

import (
	"context"
	"fmt"
	"log"

	mfgcp "repro"
)

func main() {
	params := mfgcp.DefaultParams()
	params.M = 80 // keep the demo quick; the paper's scale of 300 also works
	params.K = 6

	pol := mfgcp.NewMFGCPPolicy()
	cfg, err := mfgcp.NewMarketConfig(params, pol,
		mfgcp.WithEpochs(3),
		mfgcp.WithStepsPerEpoch(30),
		mfgcp.WithSeed(7),
		mfgcp.WithEqCache(16), // reuse fixed points across epochs
	)
	if err != nil {
		log.Fatalf("config: %v", err)
	}

	fmt.Printf("running %d EDPs × %d contents × %d epochs under %s...\n",
		params.M, params.K, cfg.Epochs, pol.Name())
	res, err := mfgcp.RunMarketContext(context.Background(), cfg)
	if err != nil {
		log.Fatalf("market: %v", err)
	}

	fmt.Println("\nper-epoch market statistics (population means):")
	fmt.Printf("  %-6s %10s %10s %10s %8s %8s\n", "epoch", "utility", "trading", "staleness", "price", "x̄")
	for _, es := range res.Stats {
		fmt.Printf("  %-6d %10.1f %10.1f %10.1f %8.3f %8.3f\n",
			es.Epoch, es.MeanUtility, es.MeanTrading, es.MeanStale, es.MeanPrice, es.MeanRate)
	}

	ledger := res.MeanLedger()
	fmt.Println("\nwhole-run ledger (population mean):")
	fmt.Printf("  trading income   %10.1f $\n", ledger.Trading)
	fmt.Printf("  sharing benefit  %10.1f $\n", ledger.Sharing)
	fmt.Printf("  placement cost   %10.1f $\n", ledger.Placement)
	fmt.Printf("  staleness cost   %10.1f $\n", ledger.Staleness)
	fmt.Printf("  sharing cost     %10.1f $\n", ledger.ShareCost)
	fmt.Printf("  net utility      %10.1f $\n", res.MeanUtility())
	fmt.Printf("\nstrategy computation time (all epochs): %v\n", res.StrategyTime)
	fmt.Println("note: the strategy time is independent of M — the Table II property.")
}

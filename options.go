package mfgcp

import "context"

// Functional options for building validated solver and market configurations
// without mutating config structs field by field. NewSolverConfig and
// NewMarketConfig start from the experiment defaults, apply the options in
// order and validate the result, so an invalid combination fails at
// construction instead of deep inside a solve.
//
//	cfg, err := mfgcp.NewSolverConfig(params,
//	    mfgcp.WithScheme("explicit"),
//	    mfgcp.WithGrid(9, 41, 60),
//	    mfgcp.WithRecorder(rec))
//
// Options shared by both configurations (WithScheme, WithRecorder) satisfy
// both interfaces and can be passed to either constructor.

// SolveOption configures a SolverConfig built by NewSolverConfig.
type SolveOption interface{ applySolve(*SolverConfig) }

// MarketOption configures a MarketConfig built by NewMarketConfig.
type MarketOption interface{ applyMarket(*MarketConfig) }

// Option is an option accepted by both NewSolverConfig and NewMarketConfig.
type Option interface {
	SolveOption
	MarketOption
}

type solveOption func(*SolverConfig)

func (f solveOption) applySolve(c *SolverConfig) { f(c) }

type marketOption func(*MarketConfig)

func (f marketOption) applyMarket(c *MarketConfig) { f(c) }

// dualOption applies to both configuration kinds.
type dualOption struct {
	solve  func(*SolverConfig)
	market func(*MarketConfig)
}

func (d dualOption) applySolve(c *SolverConfig)  { d.solve(c) }
func (d dualOption) applyMarket(c *MarketConfig) { d.market(c) }

// NewSolverConfig builds a validated solver configuration: the experiment
// defaults for p, modified by opts, checked by SolverConfig.Validate.
func NewSolverConfig(p Params, opts ...SolveOption) (SolverConfig, error) {
	return ApplySolveOptions(DefaultSolverConfig(p), opts...)
}

// ApplySolveOptions applies opts to an existing solver configuration (e.g.
// one decoded from a JSON file) and validates the result.
func ApplySolveOptions(cfg SolverConfig, opts ...SolveOption) (SolverConfig, error) {
	for _, o := range opts {
		o.applySolve(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return SolverConfig{}, err
	}
	return cfg, nil
}

// NewMarketConfig builds a validated market configuration: the experiment
// defaults for p and pol, modified by opts, checked by MarketConfig.Validate.
func NewMarketConfig(p Params, pol Policy, opts ...MarketOption) (MarketConfig, error) {
	return ApplyMarketOptions(DefaultMarketConfig(p, pol), opts...)
}

// ApplyMarketOptions applies opts to an existing market configuration (e.g.
// one decoded from a JSON file) and validates the result.
func ApplyMarketOptions(cfg MarketConfig, opts ...MarketOption) (MarketConfig, error) {
	for _, o := range opts {
		o.applyMarket(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return MarketConfig{}, err
	}
	return cfg, nil
}

// WithScheme selects the PDE time integrator by name ("implicit" or
// "explicit"). On a market configuration it applies to the per-epoch
// equilibrium solves.
func WithScheme(name string) Option {
	return dualOption{
		solve:  func(c *SolverConfig) { c.Scheme = name },
		market: func(c *MarketConfig) { c.Solver.Scheme = name },
	}
}

// WithRecorder installs the telemetry sink. On a market configuration the
// recorder also reaches the nested equilibrium solves.
func WithRecorder(rec Recorder) Option {
	return dualOption{
		solve:  func(c *SolverConfig) { c.Obs = rec },
		market: func(c *MarketConfig) { c.Obs = rec },
	}
}

// WithGrid sets the state-grid resolution (NH × NQ) and the number of time
// steps of every equilibrium solve.
func WithGrid(nh, nq, steps int) Option {
	set := func(c *SolverConfig) { c.NH, c.NQ, c.Steps = nh, nq, steps }
	return dualOption{
		solve:  set,
		market: func(c *MarketConfig) { set(&c.Solver) },
	}
}

// WithIteration tunes the best-response iteration: its budget and the
// convergence tolerance ψ_th of Algorithm 2.
func WithIteration(maxIters int, tol float64) Option {
	set := func(c *SolverConfig) { c.MaxIters, c.Tol = maxIters, tol }
	return dualOption{
		solve:  set,
		market: func(c *MarketConfig) { set(&c.Solver) },
	}
}

// WithKernel tunes the PDE kernel execution: workers bounds the parallel
// line-sweep fan-out (0 or 1 is serial; results are bit-identical at every
// worker count) and precision selects the kernel scalar type ("" or
// "float64" for the default path, "float32" for the opt-in fast path, which
// requires the implicit scheme). On a market configuration it applies to the
// per-epoch equilibrium solves.
func WithKernel(workers int, precision string) Option {
	kc := KernelConfig{Workers: workers, Precision: precision}
	return dualOption{
		solve:  func(c *SolverConfig) { c.Kernel = kc },
		market: func(c *MarketConfig) { c.Solver.Kernel = kc },
	}
}

// WithSurrogate points the configuration at a precomputed surrogate table
// (built by `mfgcp precompute`): consumers that support the tier — the
// serving daemon, `mfgcp solve -surrogate` — answer in-region workloads by
// multilinear interpolation with the cell's declared error bound attached,
// and fall back to the exact solver outside the trust region. maxErrorBound
// tightens the trust region further: an in-region answer whose declared bound
// exceeds it falls through too (0 accepts any in-region bound). Like
// WithKernel this is routing, not model, configuration — it is excluded from
// equilibrium cache keys.
func WithSurrogate(path string, maxErrorBound float64) Option {
	sc := SurrogateConfig{Path: path, MaxErrorBound: maxErrorBound}
	return dualOption{
		solve:  func(c *SolverConfig) { c.Surrogate = sc },
		market: func(c *MarketConfig) { c.Solver.Surrogate = sc },
	}
}

// WithSharing toggles the paid peer-sharing mechanism in the solver's utility
// (the MFG baseline is the framework with sharing disabled).
func WithSharing(enabled bool) SolveOption {
	return solveOption(func(c *SolverConfig) { c.ShareEnabled = enabled })
}

// WithWarmStart seeds the best-response iteration with a previously solved
// equilibrium (the unique fixed point is unchanged; only the iteration path
// shortens).
func WithWarmStart(eq *Equilibrium) SolveOption {
	return solveOption(func(c *SolverConfig) { c.WarmStart = eq })
}

// WithEqCache bounds an equilibrium cache shared across the epochs of the
// market run, so repeated (params, workload) pairs skip their solves.
func WithEqCache(capacity int) MarketOption {
	return marketOption(func(c *MarketConfig) { c.EqCacheSize = capacity })
}

// WithEscalation installs the bounded divergence-recovery ladder applied to
// failing equilibrium solves.
func WithEscalation(e RecoveryEscalation) MarketOption {
	return marketOption(func(c *MarketConfig) { c.Recovery = &e })
}

// WithFaultPlan injects deterministic seeded faults (EDP churn, dropped
// shares, forced solver failures) into the market run.
func WithFaultPlan(f FaultPlan) MarketOption {
	return marketOption(func(c *MarketConfig) { c.Faults = &f })
}

// WithCheckpoint enables atomic epoch-boundary snapshots and resume.
func WithCheckpoint(ck MarketCheckpointConfig) MarketOption {
	return marketOption(func(c *MarketConfig) { c.Checkpoint = ck })
}

// WithEpochs sets the number of optimisation epochs (Algorithm 1 outer loop).
func WithEpochs(n int) MarketOption {
	return marketOption(func(c *MarketConfig) { c.Epochs = n })
}

// WithStepsPerEpoch sets the simulation steps per epoch.
func WithStepsPerEpoch(n int) MarketOption {
	return marketOption(func(c *MarketConfig) { c.StepsPerEpoch = n })
}

// WithSeed fixes the market run's random seed; runs are reproducible per
// seed.
func WithSeed(seed int64) MarketOption {
	return marketOption(func(c *MarketConfig) { c.Seed = seed })
}

// WithRequesters configures the mobile-requester population driving
// per-content demand (a positive J supersedes the homogeneous demand model).
func WithRequesters(rc RequesterConfig) MarketOption {
	return marketOption(func(c *MarketConfig) { c.Requesters = rc })
}

// WithExactInterference switches the SINR model to the exact M-player
// interference sum instead of the mean-field approximation.
func WithExactInterference(on bool) MarketOption {
	return marketOption(func(c *MarketConfig) { c.ExactInterference = on })
}

// WithMarketContext bounds the market run. Equivalent to setting
// MarketConfig.Context; prefer RunMarketContext when the context is known at
// run time rather than configuration time.
func WithMarketContext(ctx context.Context) MarketOption {
	return marketOption(func(c *MarketConfig) { c.Context = ctx })
}
